package replica

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"tiermerge/internal/fault"
	"tiermerge/internal/model"
	"tiermerge/internal/store"
	"tiermerge/internal/tx"
	"tiermerge/internal/workload"
)

// --- Satellite: journals must reach stable media before a commit is acked.

// TestBaseJournalSyncedBeforeAck models a power loss (not just a process
// crash) with fault.SyncWriter: only bytes covered by a completed Sync
// survive. Every acknowledged base commit must be recoverable from the
// persisted image. Regression: AttachJournal used to wrap a bare
// io.Writer and nothing ever synced, so an acked commit could vanish.
func TestBaseJournalSyncedBeforeAck(t *testing.T) {
	w := fault.NewSyncWriter()
	b := NewBaseCluster(origin(), Config{})
	if err := b.AttachJournal(w); err != nil {
		t.Fatal(err)
	}
	if err := b.ExecBase(workload.Deposit("Tb1", tx.Base, "x", 10)); err != nil {
		t.Fatal(err)
	}
	b.AdvanceWindow()
	if err := b.ExecBase(workload.Deposit("Tb2", tx.Base, "y", 5)); err != nil {
		t.Fatal(err)
	}

	// Power loss now: recover from the durable bytes only.
	rec, _, err := RecoverBaseCluster(bytes.NewReader(w.Persisted()), Config{})
	if err != nil {
		t.Fatalf("recovery from persisted image: %v", err)
	}
	if !rec.Master().Equal(b.Master()) {
		t.Errorf("recovered master %s != acked master %s (acked commit lost on power loss)",
			rec.Master(), b.Master())
	}
	if rec.WindowID() != b.WindowID() {
		t.Errorf("recovered window %d != %d", rec.WindowID(), b.WindowID())
	}
}

// TestBaseJournalSyncFailureBlocksAck: when the flush fails, the commit
// must not be acknowledged — crash-between-write-and-sync is recoverable
// as "never happened", not acked-and-lost.
func TestBaseJournalSyncFailureBlocksAck(t *testing.T) {
	w := fault.NewSyncWriter()
	b := NewBaseCluster(origin(), Config{})
	if err := b.AttachJournal(w); err != nil {
		t.Fatal(err)
	}
	w.FailAfter(w.Syncs()) // every further flush fails
	err := b.ExecBase(workload.Deposit("Tb1", tx.Base, "x", 10))
	if !errors.Is(err, fault.ErrSyncFailed) {
		t.Fatalf("ExecBase with failing sync = %v, want ErrSyncFailed", err)
	}
	// The persisted image must recover cleanly and must not contain the
	// unacknowledged commit.
	rec, _, rerr := RecoverBaseCluster(bytes.NewReader(w.Persisted()), Config{})
	if rerr != nil {
		t.Fatalf("recovery from persisted image: %v", rerr)
	}
	if rec.HistoryLen() != 0 {
		t.Errorf("unacked commit present after recovery (history len %d)", rec.HistoryLen())
	}
}

// TestMergeSyncedBeforeAck: a reconnect merge's installed forwarded
// updates must survive a power loss once the mobile node is told its work
// is saved.
func TestMergeSyncedBeforeAck(t *testing.T) {
	w := fault.NewSyncWriter()
	b := NewBaseCluster(origin(), Config{})
	if err := b.AttachJournal(w); err != nil {
		t.Fatal(err)
	}
	m := NewMobileNode("m1", b)
	if err := m.Run(workload.Deposit("Tm1", tx.Tentative, "y", 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ConnectMerge(); err != nil {
		t.Fatal(err)
	}
	rec, _, err := RecoverBaseCluster(bytes.NewReader(w.Persisted()), Config{})
	if err != nil {
		t.Fatalf("recovery from persisted image: %v", err)
	}
	if !rec.Master().Equal(b.Master()) {
		t.Errorf("merged updates lost on power loss: recovered %s, acked %s",
			rec.Master(), b.Master())
	}
}

// TestMobileJournalSyncedBeforeAck: same property for the mobile tier — an
// acknowledged tentative transaction must be recoverable from the durable
// image of its journal.
func TestMobileJournalSyncedBeforeAck(t *testing.T) {
	b := NewBaseCluster(origin(), Config{})
	m := NewMobileNode("m1", b)
	w := fault.NewSyncWriter()
	if err := m.AttachJournal(w); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(workload.Deposit("Tm1", tx.Tentative, "x", 3)); err != nil {
		t.Fatal(err)
	}
	rec, _, err := RecoverMobileNode("m1", bytes.NewReader(w.Persisted()))
	if err != nil {
		t.Fatalf("recovery from persisted image: %v", err)
	}
	if rec.Pending() != 1 {
		t.Errorf("acked tentative transaction lost on power loss (recovered %d)", rec.Pending())
	}
}

// --- Satellite: the base-prefix cache must not grow without bound.

// TestPrefixCacheTrimmedOnWindowAdvance (white-box): window advance must
// drop the materialized prefix cache of the closed window and release its
// storage snapshot so compaction can proceed.
func TestPrefixCacheTrimmedOnWindowAdvance(t *testing.T) {
	eng := store.NewMemory()
	b := NewBaseCluster(origin(), Config{Store: eng})
	if err := b.ExecBase(workload.Deposit("Tb1", tx.Base, "x", 1)); err != nil {
		t.Fatal(err)
	}
	// Materialize the cache the way merges do.
	b.mu.Lock()
	b.baseAugmented(0)
	cached := b.prefix.states != nil
	b.mu.Unlock()
	if !cached {
		t.Fatal("prefix cache not materialized")
	}
	if eng.Stats().Snapshots != 1 {
		t.Fatalf("snapshots pinned = %d, want 1", eng.Stats().Snapshots)
	}
	b.AdvanceWindow()
	b.mu.Lock()
	trimmed := b.prefix.states == nil
	b.mu.Unlock()
	if !trimmed {
		t.Error("prefix cache survived window advance")
	}
	if n := eng.Stats().Snapshots; n != 0 {
		t.Errorf("storage snapshots still pinned after window advance: %d", n)
	}
}

// TestStoreBoundedAcrossWindows (soak): across many windows the version
// chains must stay bounded — window advance compacts everything below the
// new origin. Regression: the pinned prefix snapshot was never released,
// clamping the compaction floor forever, so chains (and the cache) grew
// with every window.
func TestStoreBoundedAcrossWindows(t *testing.T) {
	eng := store.NewMemory()
	b := NewBaseCluster(origin(), Config{Store: eng})
	const windows, perWindow = 60, 8
	var after10 int
	for wnd := 0; wnd < windows; wnd++ {
		for i := 0; i < perWindow; i++ {
			id := fmt.Sprintf("T%d.%d", wnd, i)
			if err := b.ExecBase(workload.Deposit(id, tx.Base, "x", 1)); err != nil {
				t.Fatal(err)
			}
		}
		// Touch the prefix cache every window, as live merges would.
		b.mu.Lock()
		b.baseAugmented(0)
		b.mu.Unlock()
		b.AdvanceWindow()
		if wnd == 9 {
			after10 = eng.Stats().Versions
		}
	}
	final := eng.Stats().Versions
	if final > after10 {
		t.Errorf("version chains grew across windows: %d after 10 windows, %d after %d",
			after10, final, windows)
	}
	// Bound: one compacted version per item plus the current (empty)
	// window. origin() has 4 items.
	if final > 4+perWindow {
		t.Errorf("version count %d exceeds per-window bound %d", final, 4+perWindow)
	}
}

// --- Tentpole: store-backed clusters behave like legacy ones.

// TestStoreBackedClusterMatchesLegacy drives an identical workload —
// base commits, a Strategy 1 interior-insert merge, a window advance —
// through a legacy cluster and a store-backed one, asserting identical
// masters at every step.
func TestStoreBackedClusterMatchesLegacy(t *testing.T) {
	run := func(cfg Config) model.State {
		b := NewBaseCluster(origin(), cfg)
		if err := b.ExecBase(workload.Deposit("Tb1", tx.Base, "x", 10)); err != nil {
			t.Fatal(err)
		}
		m := NewMobileNode("m1", b) // Strategy 1: checkout at pos 1
		if err := m.Run(workload.Deposit("Tm1", tx.Tentative, "y", 5)); err != nil {
			t.Fatal(err)
		}
		// A disjoint base commit after the checkout: the forwarded updates
		// install at the interior checkout position.
		if err := b.ExecBase(workload.Deposit("Tb2", tx.Base, "z", 3)); err != nil {
			t.Fatal(err)
		}
		out, err := m.ConnectMerge()
		if err != nil {
			t.Fatal(err)
		}
		if !out.Merged || out.Saved != 1 {
			t.Fatalf("merge outcome = %+v, want 1 saved", out)
		}
		b.AdvanceWindow()
		if err := b.ExecBase(workload.Deposit("Tb3", tx.Base, "w", 2)); err != nil {
			t.Fatal(err)
		}
		return b.Master()
	}
	legacy := run(Config{Origin: Strategy1})
	backed := run(Config{Origin: Strategy1, Store: store.NewMemory()})
	if !legacy.Equal(backed) {
		t.Errorf("store-backed master %s != legacy %s", backed, legacy)
	}
}

// TestShardedStoreBackedMatchesLegacy: same equivalence through the
// sharded tier, including a cross-shard base transaction.
func TestShardedStoreBackedMatchesLegacy(t *testing.T) {
	run := func(cfg Config) model.State {
		s := NewShardedBase(origin(), 2, cfg)
		if err := s.ExecBase(workload.Deposit("Tb1", tx.Base, "x", 10)); err != nil {
			t.Fatal(err)
		}
		if err := s.ExecBase(workload.Transfer("Tb2", tx.Base, "x", "y", 4)); err != nil {
			t.Fatal(err)
		}
		m := NewShardedMobileNode("m1", s)
		if err := m.Run(workload.Deposit("Tm1", tx.Tentative, "z", 5)); err != nil {
			t.Fatal(err)
		}
		if _, err := m.ConnectMerge(); err != nil {
			t.Fatal(err)
		}
		s.AdvanceWindow()
		return s.Master()
	}
	legacy := run(Config{})
	backed := run(Config{Store: store.NewMemory()})
	if !legacy.Equal(backed) {
		t.Errorf("store-backed sharded master %s != legacy %s", backed, legacy)
	}
}

// --- Tentpole: durable OpenBase / Checkpoint / recovery.

// TestOpenBaseFreshCommitRecover: a durable cluster survives a crash; the
// reopened cluster carries the acked master, window and history.
func TestOpenBaseFreshCommitRecover(t *testing.T) {
	dir := t.TempDir()
	b, rec, err := OpenBase(dir, origin(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 0 {
		t.Errorf("fresh open replayed %d records", rec.Records)
	}
	if err := b.ExecBase(workload.Deposit("Tb1", tx.Base, "x", 10)); err != nil {
		t.Fatal(err)
	}
	m := NewMobileNode("m1", b)
	if err := m.Run(workload.Deposit("Tm1", tx.Tentative, "y", 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ConnectMerge(); err != nil {
		t.Fatal(err)
	}
	b.AdvanceWindow()
	if err := b.ExecBase(workload.Deposit("Tb2", tx.Base, "z", 3)); err != nil {
		t.Fatal(err)
	}
	want := b.Master()
	wantWin, wantLen := b.WindowID(), b.HistoryLen()
	// Crash: no Close, no final flush beyond the per-commit syncs.

	b2, rec2, err := OpenBase(dir, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.CloseStore()
	if !b2.Master().Equal(want) {
		t.Errorf("recovered master %s != %s", b2.Master(), want)
	}
	if b2.WindowID() != wantWin || b2.HistoryLen() != wantLen {
		t.Errorf("recovered window/history = %d/%d, want %d/%d",
			b2.WindowID(), b2.HistoryLen(), wantWin, wantLen)
	}
	if rec2.Committed == 0 {
		t.Error("recovery replayed no commits")
	}
	// The recovered cluster keeps working.
	if err := b2.ExecBase(workload.Deposit("Tb3", tx.Base, "w", 1)); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointTruncatesLogAndRecovers: checkpoint + truncation must keep
// the log bounded and recovery from checkpoint+tail must land on the same
// master as before the crash.
func TestCheckpointTruncatesLogAndRecovers(t *testing.T) {
	dir := t.TempDir()
	b, _, err := OpenBase(dir, origin(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := b.ExecBase(workload.Deposit(fmt.Sprintf("T%d", i), tx.Base, "x", 1)); err != nil {
			t.Fatal(err)
		}
	}
	before := b.LogSize()
	b.AdvanceWindow() // empties the current window
	if err := b.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := b.LogSize()
	if after >= before {
		t.Errorf("log size after checkpoint %d >= before %d (no truncation)", after, before)
	}
	// Post-checkpoint commits land in the tail.
	if err := b.ExecBase(workload.Deposit("Tpost", tx.Base, "y", 2)); err != nil {
		t.Fatal(err)
	}
	want := b.Master()

	b2, rec, err := OpenBase(dir, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.CloseStore()
	if !b2.Master().Equal(want) {
		t.Errorf("recovered master %s != %s", b2.Master(), want)
	}
	// Recovery replayed checkpoint + tail, not the 50-commit history.
	if rec.Committed > 2 {
		t.Errorf("recovery replayed %d commits, want <= 2 (checkpoint should have absorbed the history)", rec.Committed)
	}
}

// TestCheckpointWithoutDiskStore: Checkpoint is a typed error on clusters
// without a durable engine.
func TestCheckpointWithoutDiskStore(t *testing.T) {
	b := NewBaseCluster(origin(), Config{Store: store.NewMemory()})
	if err := b.Checkpoint(); !errors.Is(err, ErrNoDurableStore) {
		t.Errorf("Checkpoint on memory engine = %v, want ErrNoDurableStore", err)
	}
}

// TestOpenShardedBaseRecover: the durable sharded tier recovers per shard,
// including cross-shard slices.
func TestOpenShardedBaseRecover(t *testing.T) {
	dir := t.TempDir()
	s, recs, err := OpenShardedBase(dir, origin(), 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recoveries = %d, want 2", len(recs))
	}
	if err := s.ExecBase(workload.Deposit("Tb1", tx.Base, "x", 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.ExecBase(workload.Transfer("Tb2", tx.Base, "x", "y", 4)); err != nil {
		t.Fatal(err)
	}
	want := s.Master()

	s2, _, err := OpenShardedBase(dir, nil, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.CloseStore()
	if !s2.Master().Equal(want) {
		t.Errorf("recovered sharded master %s != %s", s2.Master(), want)
	}
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// --- Rotation-gate regressions at the cluster level.

// TestConcurrentCommitsAndCheckpoints: commits racing checkpoint rotations
// (including two concurrent Checkpoint callers, the serve ticker/drain
// shape) must leave a log from which every acknowledged commit recovers.
// Pre-fix, a commit syncing in the BeginRotate→CompleteRotate window could
// fsync restarted-seq records into the outgoing tail (lost on rotation),
// and overlapping Checkpoints could interleave their boundary splits.
func TestConcurrentCommitsAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	b, _, err := OpenBase(dir, origin(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	const commits = 60
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < commits; i++ {
			if err := b.ExecBase(workload.Deposit(fmt.Sprintf("T%d", i), tx.Base, "x", 1)); err != nil {
				errs <- fmt.Errorf("commit %d: %w", i, err)
				return
			}
		}
	}()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if err := b.Checkpoint(); err != nil {
					errs <- fmt.Errorf("checkpoint: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := b.Master()
	// Crash without Close: recovery must see every acknowledged commit.
	b2, rec, err := OpenBase(dir, nil, Config{})
	if err != nil {
		t.Fatalf("recovery after concurrent checkpoints: %v", err)
	}
	defer b2.CloseStore()
	if !b2.Master().Equal(want) {
		t.Errorf("recovered master %s != %s (dropped %d)", b2.Master(), want, rec.Dropped)
	}
}

// TestCheckpointFailureStopsAcks: a failed rotation wedges the journal —
// the boundary already restarted the record numbering, so continuing to
// append would corrupt the old tail. No later commit may be acknowledged.
// Pre-fix, the cluster kept serving and the next sync planted an interior
// sequence break that made the log unrecoverable despite acked commits.
func TestCheckpointFailureStopsAcks(t *testing.T) {
	dir := t.TempDir()
	b, _, err := OpenBase(dir, origin(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ExecBase(workload.Deposit("T1", tx.Base, "x", 1)); err != nil {
		t.Fatal(err)
	}
	// Sabotage the data directory so the rotation cannot stage its temp
	// checkpoint file.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := b.Checkpoint(); err == nil {
		t.Fatal("Checkpoint into a removed directory must fail")
	}
	if err := b.ExecBase(workload.Deposit("T2", tx.Base, "x", 1)); err == nil {
		t.Fatal("commit after a failed rotation must not be acknowledged")
	}
	if err := b.Checkpoint(); err == nil {
		t.Fatal("a wedged log must keep failing checkpoints, not resurrect itself")
	}
	b.CloseStore() // wedge error expected; this releases the tail fd
}
