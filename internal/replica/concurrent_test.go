package replica

import (
	"fmt"
	"sync"
	"testing"

	"tiermerge/internal/cost"
	"tiermerge/internal/model"
	"tiermerge/internal/tx"
	"tiermerge/internal/workload"
)

// Tests for the concurrent merge pipeline: simultaneous reconnects must
// land on a state some serial admission order produces, counter totals must
// match the serial path, and merges must coexist with live base traffic.
// The suite runs under -race in scripts/check.sh.

// fleetOrigin is a universe wide enough for a small fleet: a shared priced
// item p, a shared account s, and per-mobile accounts a0..a7 / base
// accounts b0..b7.
func fleetOrigin() model.State {
	st := model.StateOf(map[model.Item]model.Value{"p": 50, "s": 100})
	for i := 0; i < 8; i++ {
		st.Set(model.Item(fmt.Sprintf("a%d", i)), 100)
		st.Set(model.Item(fmt.Sprintf("b%d", i)), 100)
	}
	return st
}

// conflictFleet builds a cluster and n mobiles whose tentative histories
// all conflict on the shared item p (each sets its own price) while also
// depositing into private accounts.
func conflictFleet(strategy OriginStrategy, attempts, n int, t *testing.T) (*BaseCluster, []*MobileNode) {
	t.Helper()
	b := NewBaseCluster(fleetOrigin(), Config{Origin: strategy, MergeAttempts: attempts})
	ms := make([]*MobileNode, n)
	for i := range ms {
		ms[i] = NewMobileNode(fmt.Sprintf("m%d", i), b)
		if err := ms[i].Run(workload.SetPrice(fmt.Sprintf("Tp%d", i), tx.Tentative, "p", model.Value(100+11*i))); err != nil {
			t.Fatal(err)
		}
		if err := ms[i].Run(workload.Deposit(fmt.Sprintf("Td%d", i), tx.Tentative, model.Item(fmt.Sprintf("a%d", i)), 5)); err != nil {
			t.Fatal(err)
		}
	}
	return b, ms
}

// disjointFleet builds a cluster and n mobiles touching only their private
// accounts — the low-conflict workload where every merge should admit
// optimistically.
func disjointFleet(strategy OriginStrategy, attempts, n int, t *testing.T) (*BaseCluster, []*MobileNode) {
	t.Helper()
	b := NewBaseCluster(fleetOrigin(), Config{Origin: strategy, MergeAttempts: attempts})
	ms := make([]*MobileNode, n)
	for i := range ms {
		ms[i] = NewMobileNode(fmt.Sprintf("m%d", i), b)
		it := model.Item(fmt.Sprintf("a%d", i))
		for k := 0; k < 3; k++ {
			if err := ms[i].Run(workload.Deposit(fmt.Sprintf("Td%d.%d", i, k), tx.Tentative, it, 5)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b, ms
}

// connectAll reconnects every mobile concurrently and fails the test on any
// error.
func connectAll(b *BaseCluster, ms []*MobileNode, t *testing.T) []*ConnectOutcome {
	t.Helper()
	outs := make([]*ConnectOutcome, len(ms))
	errs := make([]error, len(ms))
	var wg sync.WaitGroup
	wg.Add(len(ms))
	for i := range ms {
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = ms[i].ConnectMerge()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("mobile %d: %v", i, err)
		}
	}
	return outs
}

// permutations returns every ordering of 0..n-1.
func permutations(n int) [][]int {
	var out [][]int
	perm := make([]int, n)
	used := make([]bool, n)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for v := 0; v < n; v++ {
			if !used[v] {
				used[v] = true
				perm[k] = v
				rec(k + 1)
				used[v] = false
			}
		}
	}
	rec(0)
	return out
}

// TestConcurrentMergeMatchesSomeSerialOrder: N mobiles reconnect
// simultaneously with histories conflicting on a shared item. Under both
// origin strategies the concurrent outcome must be final-state-equivalent
// to admitting the same merges in some serial order (one-copy
// serializability of admissions).
func TestConcurrentMergeMatchesSomeSerialOrder(t *testing.T) {
	const n = 3
	for _, strategy := range []OriginStrategy{Strategy2, Strategy1} {
		t.Run(strategy.String(), func(t *testing.T) {
			// Ground truth: the final master for every serial admission
			// order, produced by the always-serial pipeline configuration.
			var serialStates []model.State
			for _, perm := range permutations(n) {
				b, ms := conflictFleet(strategy, -1, n, t)
				for _, i := range perm {
					if _, err := ms[i].ConnectMerge(); err != nil {
						t.Fatal(err)
					}
				}
				serialStates = append(serialStates, b.Master())
			}
			for trial := 0; trial < 8; trial++ {
				b, ms := conflictFleet(strategy, 0, n, t)
				connectAll(b, ms, t)
				got := b.Master()
				found := false
				for _, want := range serialStates {
					if got.Equal(want) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("trial %d: concurrent master %s matches no serial admission order %v",
						trial, got, serialStates)
				}
			}
		})
	}
}

// TestConcurrentMergeLowConflictNoFallbacks: on a disjoint workload every
// concurrent merge must admit optimistically — all merged, nothing backed
// out, no fallbacks, no degradation storms — and the final state must carry
// every mobile's deposits.
func TestConcurrentMergeLowConflictNoFallbacks(t *testing.T) {
	const n = 8
	b, ms := disjointFleet(Strategy2, 0, n, t)
	outs := connectAll(b, ms, t)
	for i, out := range outs {
		if !out.Merged || out.Saved != 3 || out.Reprocessed != 0 {
			t.Errorf("mobile %d outcome = %+v, want clean merge saving 3", i, out)
		}
	}
	c := b.Counters().Snapshot()
	if c.MergeFallbacks != 0 || c.MergesPerformed != n || c.TxnsBackedOut != 0 {
		t.Errorf("counters = %+v, want %d clean merges", c, n)
	}
	master := b.Master()
	for i := 0; i < n; i++ {
		it := model.Item(fmt.Sprintf("a%d", i))
		if got := master.Get(it); got != 115 {
			t.Errorf("master %s = %d, want 115", it, got)
		}
	}
}

// TestConcurrentMergeCountersMatchSerial: on the disjoint workload the
// concurrent pipeline must charge exactly what the serial path charges.
// BaseGraphOps and BaseBackoutOps are excluded: they scale with the length
// of the base prefix each merge observed, which legitimately depends on
// admission interleaving (a concurrently prepared merge can validate
// against a shorter prefix than any serial schedule would give it).
// MergeRetries and AdmitBatches are excluded for the same reason: they
// describe the shape of the pipeline run (how many re-prepares the
// interleaving forced, how the admissions happened to batch), not work
// the serial baseline performs at all.
func TestConcurrentMergeCountersMatchSerial(t *testing.T) {
	const n = 4
	run := func(attempts int, concurrent bool) cost.Counts {
		b, ms := disjointFleet(Strategy2, attempts, n, t)
		if concurrent {
			connectAll(b, ms, t)
		} else {
			for _, m := range ms {
				if _, err := m.ConnectMerge(); err != nil {
					t.Fatal(err)
				}
			}
		}
		return b.Counters().Snapshot()
	}
	serial := run(-1, false)
	conc := run(0, true)
	serial.BaseGraphOps, conc.BaseGraphOps = 0, 0
	serial.BaseBackoutOps, conc.BaseBackoutOps = 0, 0
	serial.MergeRetries, conc.MergeRetries = 0, 0
	serial.AdmitBatches, conc.AdmitBatches = 0, 0
	if serial != conc {
		t.Errorf("counter totals diverged:\nserial    %+v\nconcurrent %+v", serial, conc)
	}
}

// TestConcurrentMergeUnderBaseTraffic: merges race live ExecBase traffic on
// an overlapping item. Everything is additive, so whatever interleaving the
// scheduler picks, no deposit may be lost: validation failures must retry
// or degrade, never drop work.
func TestConcurrentMergeUnderBaseTraffic(t *testing.T) {
	const (
		mobiles  = 4
		baseTxns = 6
	)
	b := NewBaseCluster(fleetOrigin(), Config{})
	ms := make([]*MobileNode, mobiles)
	for i := range ms {
		ms[i] = NewMobileNode(fmt.Sprintf("m%d", i), b)
		if err := ms[i].Run(workload.Deposit(fmt.Sprintf("Ts%d", i), tx.Tentative, "s", 5)); err != nil {
			t.Fatal(err)
		}
		if err := ms[i].Run(workload.Deposit(fmt.Sprintf("Td%d", i), tx.Tentative, model.Item(fmt.Sprintf("a%d", i)), 5)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, mobiles+baseTxns)
	wg.Add(mobiles + baseTxns)
	for i := range ms {
		go func(i int) {
			defer wg.Done()
			_, errs[i] = ms[i].ConnectMerge()
		}(i)
	}
	for k := 0; k < baseTxns; k++ {
		go func(k int) {
			defer wg.Done()
			errs[mobiles+k] = b.ExecBase(workload.Deposit(fmt.Sprintf("Tb%d", k), tx.Base, "s", 7))
		}(k)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	master := b.Master()
	if got, want := master.Get("s"), model.Value(100+mobiles*5+baseTxns*7); got != want {
		t.Errorf("master s = %d, want %d (no deposit lost)", got, want)
	}
	for i := 0; i < mobiles; i++ {
		it := model.Item(fmt.Sprintf("a%d", i))
		if got := master.Get(it); got != 105 {
			t.Errorf("master %s = %d, want 105", it, got)
		}
	}
}

// TestServerWorkerPoolConcurrentClients drives simultaneous reconnects
// through the message-passing server with a worker pool: the wire path must
// deliver the same no-lost-update guarantee.
func TestServerWorkerPoolConcurrentClients(t *testing.T) {
	const n = 6
	b := NewBaseCluster(fleetOrigin(), Config{})
	srv := ServeBaseWorkers(b, 4)
	defer srv.Close()
	clients := make([]*Client, n)
	for i := range clients {
		c, err := Dial(fmt.Sprintf("m%d", i), srv)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		if err := c.Run(workload.Deposit(fmt.Sprintf("Ts%d", i), tx.Tentative, "s", 5)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	wg.Add(n)
	for i := range clients {
		go func(i int) {
			defer wg.Done()
			_, errs[i] = clients[i].ConnectMerge()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if got, want := b.Master().Get("s"), model.Value(100+n*5); got != want {
		t.Errorf("master s = %d, want %d", got, want)
	}
}

// TestMergeSerialDegradationPath pins the always-serial configuration
// (MergeAttempts < 0): outcomes and states must match the optimistic
// pipeline's on a quiet cluster.
func TestMergeSerialDegradationPath(t *testing.T) {
	for _, attempts := range []int{0, -1} {
		b, ms := conflictFleet(Strategy2, attempts, 3, t)
		for i, m := range ms {
			out, err := m.ConnectMerge()
			if err != nil {
				t.Fatal(err)
			}
			if !out.Merged {
				t.Errorf("attempts=%d mobile %d: outcome = %+v, want merged", attempts, i, out)
			}
		}
		// Last admitted SetPrice survives; every deposit survives.
		if got := b.Master().Get("p"); got != 100+11*2 {
			t.Errorf("attempts=%d: master p = %d, want %d", attempts, got, 100+11*2)
		}
	}
}
