package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"tiermerge/internal/model"
	"tiermerge/internal/obs"
	"tiermerge/internal/tx"
	"tiermerge/internal/workload"
)

// TestServerMergeRoundTrip drives the full protocol through serialized
// messages and compares against the direct-call path.
func TestServerMergeRoundTrip(t *testing.T) {
	b := NewBaseCluster(origin(), Config{})
	srv := ServeBase(b)
	defer srv.Close()

	c, err := Dial("m1", srv)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(workload.Deposit("Tm1", tx.Tentative, "x", 5)); err != nil {
		t.Fatal(err)
	}
	if got := c.Local().Get("x"); got != 105 {
		t.Errorf("client local x = %d, want 105", got)
	}
	if err := srv.ExecBaseRemote(workload.Deposit("Tb1", tx.Base, "z", 7)); err != nil {
		t.Fatal(err)
	}
	out, err := c.ConnectMerge()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Merged || out.Saved != 1 || out.Reprocessed != 0 {
		t.Errorf("outcome = %+v", out)
	}
	master := b.Master()
	if master.Get("x") != 105 || master.Get("z") != 307 {
		t.Errorf("master = %s", master)
	}
	if c.Pending() != 0 {
		t.Errorf("pending after merge = %d", c.Pending())
	}
	reqs, in, outB := srv.Stats()
	if reqs < 3 || in == 0 || outB == 0 {
		t.Errorf("server stats: reqs=%d in=%d out=%d", reqs, in, outB)
	}
}

// TestServerConflictOverWire: a conflicting client transaction is backed
// out and re-executed from the shipped code.
func TestServerConflictOverWire(t *testing.T) {
	b := NewBaseCluster(origin(), Config{})
	srv := ServeBase(b)
	defer srv.Close()

	c, err := Dial("m1", srv)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(workload.SetPrice("Tm1", tx.Tentative, "x", 111)); err != nil {
		t.Fatal(err)
	}
	if err := srv.ExecBaseRemote(workload.SetPrice("Tb1", tx.Base, "x", 222)); err != nil {
		t.Fatal(err)
	}
	out, err := c.ConnectMerge()
	if err != nil {
		t.Fatal(err)
	}
	if out.Saved != 0 || out.Reprocessed != 1 {
		t.Errorf("outcome = %+v, want backed out + reexecuted", out)
	}
	if out.Report != nil {
		t.Error("full report should not travel over the wire")
	}
	if got := b.Master().Get("x"); got != 111 {
		t.Errorf("master x = %d, want 111 (re-executed from shipped code)", got)
	}
}

// TestServerReprocessOverWire exercises the two-tier baseline path.
func TestServerReprocessOverWire(t *testing.T) {
	b := NewBaseCluster(origin(), Config{})
	srv := ServeBase(b)
	defer srv.Close()
	c, err := Dial("m1", srv)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(workload.Deposit("Tm1", tx.Tentative, "y", 9)); err != nil {
		t.Fatal(err)
	}
	out, err := c.ConnectReprocess()
	if err != nil {
		t.Fatal(err)
	}
	if out.Merged || out.Reprocessed != 1 {
		t.Errorf("outcome = %+v", out)
	}
	if got := b.Master().Get("y"); got != 209 {
		t.Errorf("master y = %d, want 209", got)
	}
}

// TestServerConcurrentClients hammers the server from many goroutines; the
// single-goroutine server serializes them and the additive total survives.
func TestServerConcurrentClients(t *testing.T) {
	b := NewBaseCluster(model.StateOf(map[model.Item]model.Value{"acct": 0}), Config{})
	srv := ServeBase(b)
	defer srv.Close()

	const clients, rounds = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(fmt.Sprintf("m%d", i), srv)
			if err != nil {
				errs <- err
				return
			}
			for r := 0; r < rounds; r++ {
				id := fmt.Sprintf("T%d.%d", i, r)
				if err := c.Run(workload.Deposit(id, tx.Tentative, "acct", 1)); err != nil {
					errs <- err
					return
				}
				if _, err := c.ConnectMerge(); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Whether saved or backed-out-and-re-executed, every deposit lands.
	if got := b.Master().Get("acct"); got != clients*rounds {
		t.Errorf("acct = %d, want %d", got, clients*rounds)
	}
}

// TestServerClosedRejectsCalls: calls after Close fail fast.
func TestServerClosedRejectsCalls(t *testing.T) {
	b := NewBaseCluster(origin(), Config{})
	srv := ServeBase(b)
	c, err := Dial("m1", srv)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := c.ConnectMerge(); err == nil {
		t.Error("call after Close succeeded")
	}
}

// TestServerShipsBadIDs: the back-out set survives the wire as a summary.
func TestServerShipsBadIDs(t *testing.T) {
	b := NewBaseCluster(origin(), Config{})
	srv := ServeBase(b)
	defer srv.Close()
	c, err := Dial("m1", srv)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(workload.SetPrice("Tm1", tx.Tentative, "x", 1)); err != nil {
		t.Fatal(err)
	}
	if err := srv.ExecBaseRemote(workload.SetPrice("Tb1", tx.Base, "x", 2)); err != nil {
		t.Fatal(err)
	}
	out, err := c.ConnectMerge()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.BadIDs) != 1 || out.BadIDs[0] != "Tm1" {
		t.Errorf("BadIDs = %v, want [Tm1]", out.BadIDs)
	}
}

// TestLossyTransportExactlyOnce drops every 2nd response; clients retry and
// the dedup cache guarantees each deposit is applied exactly once — the
// additive total proves no double-merge happened.
func TestLossyTransportExactlyOnce(t *testing.T) {
	b := NewBaseCluster(model.StateOf(map[model.Item]model.Value{"acct": 0}), Config{})
	srv := ServeBase(b)
	defer srv.Close()
	srv.DropEveryNth(2)

	c, err := Dial("m1", srv)
	if err != nil {
		// The checkout itself may need a retry under 50% loss; Dial does
		// not retry, so use a fresh attempt.
		c, err = Dial("m1", srv)
		if err != nil {
			t.Fatal(err)
		}
	}
	const deposits = 10
	applied := 0
	for i := 0; i < deposits; i++ {
		id := fmt.Sprintf("T%d", i)
		if err := c.Run(workload.Deposit(id, tx.Tentative, "acct", 1)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.ConnectMerge(); err != nil {
			// Checkout-after-merge can be dropped too; the merge itself
			// was applied exactly once. Redial to refresh the replica.
			c2, derr := Dial("m1", srv)
			for derr != nil {
				c2, derr = Dial("m1", srv)
			}
			c2.seq = c.seq
			c = c2
		}
		applied++
	}
	if got := b.Master().Get("acct"); got != deposits {
		t.Errorf("acct = %d, want %d (lost or duplicated merges)", got, deposits)
	}
	_ = applied
}

// TestRetriedMergeNotDoubleApplied pins the dedup path directly: the same
// journal+seq sent twice merges once.
func TestRetriedMergeNotDoubleApplied(t *testing.T) {
	b := NewBaseCluster(model.StateOf(map[model.Item]model.Value{"acct": 0}), Config{})
	srv := ServeBase(b)
	defer srv.Close()
	c, err := Dial("m1", srv)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(workload.Deposit("T1", tx.Tentative, "acct", 5)); err != nil {
		t.Fatal(err)
	}
	journal, err := c.marshalJournal()
	if err != nil {
		t.Fatal(err)
	}
	req := wireReq{Kind: reqMerge, MobileID: "m1", Seq: 42, Journal: journal}
	if _, err := call(context.Background(), srv.Transport(), req); err != nil {
		t.Fatal(err)
	}
	resp2, err := call(context.Background(), srv.Transport(), req) // retry of the same seq
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Saved != 1 {
		t.Errorf("cached response saved = %d, want 1", resp2.Saved)
	}
	if got := b.Master().Get("acct"); got != 5 {
		t.Errorf("acct = %d, want 5 (double-applied!)", got)
	}
}

// TestStaleSeqRejected is the wire-dedup regression test: the server's
// exactly-once guard matched only the EXACT last seq, so a delayed
// duplicate of an OLDER reconnect frame fell through the cache and was
// merged again — double-applying its journal. The stale frame must now be
// rejected with ErrStaleSeq and leave no trace on the master. Runs under
// -race in scripts/check.sh with concurrent duplicate deliveries.
func TestStaleSeqRejected(t *testing.T) {
	b := NewBaseCluster(model.StateOf(map[model.Item]model.Value{"acct": 0}), Config{})
	srv := ServeBase(b)
	defer srv.Close()
	ctx := context.Background()
	c, err := Dial("m1", srv)
	if err != nil {
		t.Fatal(err)
	}

	// Reconnect seq 1: deposit 5.
	if err := c.Run(workload.Deposit("T1", tx.Tentative, "acct", 5)); err != nil {
		t.Fatal(err)
	}
	journal1, err := c.marshalJournal()
	if err != nil {
		t.Fatal(err)
	}
	req1 := wireReq{Kind: reqMerge, MobileID: "m1", Seq: 1, Journal: journal1}
	if _, err := call(ctx, srv.Transport(), req1); err != nil {
		t.Fatal(err)
	}

	// Reconnect seq 2: a fresh period depositing 7.
	if err := c.checkout(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(workload.Deposit("T2", tx.Tentative, "acct", 7)); err != nil {
		t.Fatal(err)
	}
	journal2, err := c.marshalJournal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := call(ctx, srv.Transport(),
		wireReq{Kind: reqMerge, MobileID: "m1", Seq: 2, Journal: journal2}); err != nil {
		t.Fatal(err)
	}
	if got := b.Master().Get("acct"); got != 12 {
		t.Fatalf("acct = %d, want 12 before the duplicate", got)
	}

	// The seq-1 frame arrives again — delayed in transit, out of order.
	// Deliver it from several goroutines at once: every copy must be
	// rejected as stale and none may re-merge journal1.
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = call(ctx, srv.Transport(), req1)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrStaleSeq) {
			t.Errorf("duplicate %d: err = %v, want ErrStaleSeq", i, err)
		}
	}
	if got := b.Master().Get("acct"); got != 12 {
		t.Errorf("acct = %d, want 12 (stale frame re-applied deposit!)", got)
	}
	// The exact-match retry path still replays the cached response.
	resp, err := call(ctx, srv.Transport(),
		wireReq{Kind: reqMerge, MobileID: "m1", Seq: 2, Journal: journal2})
	if err != nil || resp.Saved != 1 {
		t.Errorf("retry of current seq: resp=%+v err=%v", resp, err)
	}
}

// TestDedupCacheBounded: the per-mobile response cache must not grow with
// the lifetime mobile population. With capacity 4, eight distinct mobiles
// leave at most 4 entries, the survivors are the most recently used, and
// the tiermerge_wire_dedup_entries gauge tracks the size.
func TestDedupCacheBounded(t *testing.T) {
	b := NewBaseCluster(model.StateOf(map[model.Item]model.Value{"acct": 0}), Config{})
	metrics := obs.NewMetrics()
	srv := Serve(b, WithDedupCapacity(4), WithObserver(metrics))
	defer srv.Close()
	ctx := context.Background()

	connect := func(id string, seq int64) {
		t.Helper()
		c, err := Dial(id, srv)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(workload.Deposit("T-"+id, tx.Tentative, "acct", 1)); err != nil {
			t.Fatal(err)
		}
		journal, err := c.marshalJournal()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := call(ctx, srv.Transport(),
			wireReq{Kind: reqMerge, MobileID: id, Seq: seq, Journal: journal}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		connect(fmt.Sprintf("m%d", i), 1)
	}
	if got := srv.DedupEntries(); got != 4 {
		t.Errorf("dedup entries = %d, want 4 (cache unbounded?)", got)
	}
	if got := metrics.Registry().Gauge("tiermerge_wire_dedup_entries").Value(); got != 4 {
		t.Errorf("tiermerge_wire_dedup_entries = %d, want 4", got)
	}
	// m7 (most recent) must have survived: its retry replays the cache
	// without re-merging. m0 (evicted) re-merges and double-applies — the
	// documented cost of eviction, proven here so the trade-off stays
	// visible.
	before := b.Master().Get("acct")
	if _, err := call(ctx, srv.Transport(),
		wireReq{Kind: reqMerge, MobileID: "m7", Seq: 1, Journal: nil}); err != nil {
		t.Fatalf("retry of cached m7: %v", err)
	}
	if got := b.Master().Get("acct"); got != before {
		t.Errorf("cached retry changed master: %d -> %d", before, got)
	}
}

// TestClientRestartNewEpochNotStale pins the flip side of the stale-seq
// guard: a brand-new client process reusing a mobile ID (a fleet restart
// against a live server) starts its seqs over at 1 in a fresh session
// epoch, and must be served — not rejected as a stale duplicate of the
// previous instance's higher seq.
func TestClientRestartNewEpochNotStale(t *testing.T) {
	b := NewBaseCluster(model.StateOf(map[model.Item]model.Value{"acct": 0}), Config{})
	srv := ServeBase(b)
	defer srv.Close()

	first, err := Dial("m1", srv)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if err := first.Run(workload.Deposit(fmt.Sprintf("Ta%d", k), tx.Tentative, "acct", 5)); err != nil {
			t.Fatal(err)
		}
		if _, err := first.ConnectMerge(); err != nil {
			t.Fatalf("first instance reconnect %d: %v", k+1, err)
		}
	}

	// The process restarts: same mobile ID, fresh client, seq back at 1.
	second, err := Dial("m1", srv)
	if err != nil {
		t.Fatal(err)
	}
	if second.epoch == first.epoch {
		t.Fatalf("restarted client reused epoch %q", second.epoch)
	}
	if err := second.Run(workload.Deposit("Tb", tx.Tentative, "acct", 7)); err != nil {
		t.Fatal(err)
	}
	out, err := second.ConnectMerge()
	if err != nil {
		t.Fatalf("restarted client rejected: %v", err)
	}
	if !out.Merged || out.Saved != 1 {
		t.Fatalf("restarted client outcome = %+v, want merged with 1 saved", out)
	}
	if got := b.Master().Get("acct"); got != 22 {
		t.Fatalf("acct = %d, want 22 (three 5s + one 7)", got)
	}

	// Within the new session the stale guard still bites: after the second
	// instance advances to seq 2, a replay of its seq-1 frame is stale.
	if err := second.Run(workload.Deposit("Tc", tx.Tentative, "acct", 9)); err != nil {
		t.Fatal(err)
	}
	if _, err := second.ConnectMerge(); err != nil {
		t.Fatal(err)
	}
	journal := []byte{}
	_, err = call(context.Background(), srv.Transport(),
		wireReq{Kind: reqMerge, MobileID: "m1", Seq: 1, Epoch: second.epoch, Journal: journal})
	if !errors.Is(err, ErrStaleSeq) {
		t.Fatalf("replayed seq-1 frame in the live epoch: err = %v, want ErrStaleSeq", err)
	}
}
