package replica

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"tiermerge/internal/model"
	"tiermerge/internal/tx"
	"tiermerge/internal/workload"
)

// TestServerMergeRoundTrip drives the full protocol through serialized
// messages and compares against the direct-call path.
func TestServerMergeRoundTrip(t *testing.T) {
	b := NewBaseCluster(origin(), Config{})
	srv := ServeBase(b)
	defer srv.Close()

	c, err := Dial("m1", srv)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(workload.Deposit("Tm1", tx.Tentative, "x", 5)); err != nil {
		t.Fatal(err)
	}
	if got := c.Local().Get("x"); got != 105 {
		t.Errorf("client local x = %d, want 105", got)
	}
	if err := srv.ExecBaseRemote(workload.Deposit("Tb1", tx.Base, "z", 7)); err != nil {
		t.Fatal(err)
	}
	out, err := c.ConnectMerge()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Merged || out.Saved != 1 || out.Reprocessed != 0 {
		t.Errorf("outcome = %+v", out)
	}
	master := b.Master()
	if master.Get("x") != 105 || master.Get("z") != 307 {
		t.Errorf("master = %s", master)
	}
	if c.Pending() != 0 {
		t.Errorf("pending after merge = %d", c.Pending())
	}
	reqs, in, outB := srv.Stats()
	if reqs < 3 || in == 0 || outB == 0 {
		t.Errorf("server stats: reqs=%d in=%d out=%d", reqs, in, outB)
	}
}

// TestServerConflictOverWire: a conflicting client transaction is backed
// out and re-executed from the shipped code.
func TestServerConflictOverWire(t *testing.T) {
	b := NewBaseCluster(origin(), Config{})
	srv := ServeBase(b)
	defer srv.Close()

	c, err := Dial("m1", srv)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(workload.SetPrice("Tm1", tx.Tentative, "x", 111)); err != nil {
		t.Fatal(err)
	}
	if err := srv.ExecBaseRemote(workload.SetPrice("Tb1", tx.Base, "x", 222)); err != nil {
		t.Fatal(err)
	}
	out, err := c.ConnectMerge()
	if err != nil {
		t.Fatal(err)
	}
	if out.Saved != 0 || out.Reprocessed != 1 {
		t.Errorf("outcome = %+v, want backed out + reexecuted", out)
	}
	if out.Report != nil {
		t.Error("full report should not travel over the wire")
	}
	if got := b.Master().Get("x"); got != 111 {
		t.Errorf("master x = %d, want 111 (re-executed from shipped code)", got)
	}
}

// TestServerReprocessOverWire exercises the two-tier baseline path.
func TestServerReprocessOverWire(t *testing.T) {
	b := NewBaseCluster(origin(), Config{})
	srv := ServeBase(b)
	defer srv.Close()
	c, err := Dial("m1", srv)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(workload.Deposit("Tm1", tx.Tentative, "y", 9)); err != nil {
		t.Fatal(err)
	}
	out, err := c.ConnectReprocess()
	if err != nil {
		t.Fatal(err)
	}
	if out.Merged || out.Reprocessed != 1 {
		t.Errorf("outcome = %+v", out)
	}
	if got := b.Master().Get("y"); got != 209 {
		t.Errorf("master y = %d, want 209", got)
	}
}

// TestServerConcurrentClients hammers the server from many goroutines; the
// single-goroutine server serializes them and the additive total survives.
func TestServerConcurrentClients(t *testing.T) {
	b := NewBaseCluster(model.StateOf(map[model.Item]model.Value{"acct": 0}), Config{})
	srv := ServeBase(b)
	defer srv.Close()

	const clients, rounds = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(fmt.Sprintf("m%d", i), srv)
			if err != nil {
				errs <- err
				return
			}
			for r := 0; r < rounds; r++ {
				id := fmt.Sprintf("T%d.%d", i, r)
				if err := c.Run(workload.Deposit(id, tx.Tentative, "acct", 1)); err != nil {
					errs <- err
					return
				}
				if _, err := c.ConnectMerge(); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Whether saved or backed-out-and-re-executed, every deposit lands.
	if got := b.Master().Get("acct"); got != clients*rounds {
		t.Errorf("acct = %d, want %d", got, clients*rounds)
	}
}

// TestServerClosedRejectsCalls: calls after Close fail fast.
func TestServerClosedRejectsCalls(t *testing.T) {
	b := NewBaseCluster(origin(), Config{})
	srv := ServeBase(b)
	c, err := Dial("m1", srv)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := c.ConnectMerge(); err == nil {
		t.Error("call after Close succeeded")
	}
}

// TestServerShipsBadIDs: the back-out set survives the wire as a summary.
func TestServerShipsBadIDs(t *testing.T) {
	b := NewBaseCluster(origin(), Config{})
	srv := ServeBase(b)
	defer srv.Close()
	c, err := Dial("m1", srv)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(workload.SetPrice("Tm1", tx.Tentative, "x", 1)); err != nil {
		t.Fatal(err)
	}
	if err := srv.ExecBaseRemote(workload.SetPrice("Tb1", tx.Base, "x", 2)); err != nil {
		t.Fatal(err)
	}
	out, err := c.ConnectMerge()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.BadIDs) != 1 || out.BadIDs[0] != "Tm1" {
		t.Errorf("BadIDs = %v, want [Tm1]", out.BadIDs)
	}
}

// TestLossyTransportExactlyOnce drops every 2nd response; clients retry and
// the dedup cache guarantees each deposit is applied exactly once — the
// additive total proves no double-merge happened.
func TestLossyTransportExactlyOnce(t *testing.T) {
	b := NewBaseCluster(model.StateOf(map[model.Item]model.Value{"acct": 0}), Config{})
	srv := ServeBase(b)
	defer srv.Close()
	srv.DropEveryNth(2)

	c, err := Dial("m1", srv)
	if err != nil {
		// The checkout itself may need a retry under 50% loss; Dial does
		// not retry, so use a fresh attempt.
		c, err = Dial("m1", srv)
		if err != nil {
			t.Fatal(err)
		}
	}
	const deposits = 10
	applied := 0
	for i := 0; i < deposits; i++ {
		id := fmt.Sprintf("T%d", i)
		if err := c.Run(workload.Deposit(id, tx.Tentative, "acct", 1)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.ConnectMerge(); err != nil {
			// Checkout-after-merge can be dropped too; the merge itself
			// was applied exactly once. Redial to refresh the replica.
			c2, derr := Dial("m1", srv)
			for derr != nil {
				c2, derr = Dial("m1", srv)
			}
			c2.seq = c.seq
			c = c2
		}
		applied++
	}
	if got := b.Master().Get("acct"); got != deposits {
		t.Errorf("acct = %d, want %d (lost or duplicated merges)", got, deposits)
	}
	_ = applied
}

// TestRetriedMergeNotDoubleApplied pins the dedup path directly: the same
// journal+seq sent twice merges once.
func TestRetriedMergeNotDoubleApplied(t *testing.T) {
	b := NewBaseCluster(model.StateOf(map[model.Item]model.Value{"acct": 0}), Config{})
	srv := ServeBase(b)
	defer srv.Close()
	c, err := Dial("m1", srv)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(workload.Deposit("T1", tx.Tentative, "acct", 5)); err != nil {
		t.Fatal(err)
	}
	journal, err := c.marshalJournal()
	if err != nil {
		t.Fatal(err)
	}
	req := wireReq{Kind: reqMerge, MobileID: "m1", Seq: 42, Journal: journal}
	if _, err := call(context.Background(), srv.Transport(), req); err != nil {
		t.Fatal(err)
	}
	resp2, err := call(context.Background(), srv.Transport(), req) // retry of the same seq
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Saved != 1 {
		t.Errorf("cached response saved = %d, want 1", resp2.Saved)
	}
	if got := b.Master().Get("acct"); got != 5 {
		t.Errorf("acct = %d, want 5 (double-applied!)", got)
	}
}
