package replica

import (
	"fmt"
	"sync"
	"testing"

	"tiermerge/internal/cost"
	"tiermerge/internal/model"
	"tiermerge/internal/tx"
	"tiermerge/internal/workload"
)

// Tests for the sharded base tier: routing determinism, N=1 parity with
// the plain cluster, serial-order equivalence of concurrent sharded
// reconnects, counter parity across admission modes, cross-shard
// two-phase merges against the single-shard baseline, the window
// barrier, and an all-shards-contended deadlock smoke. The suite runs
// under -race in scripts/check.sh.

// shardFleetOrigin funds one account per mobile plus a shared priced
// item; with the default FNV router the accounts scatter across shards.
func shardFleetOrigin(n int) model.State {
	st := model.StateOf(map[model.Item]model.Value{"p": 50})
	for i := 0; i < n; i++ {
		st.Set(model.Item(fmt.Sprintf("m%d.acct", i)), 100)
	}
	return st
}

func shardAcct(i int) model.Item { return model.Item(fmt.Sprintf("m%d.acct", i)) }

// shardedDisjointFleet builds an n-mobile fleet of private deposits on a
// tier of the given shard count.
func shardedDisjointFleet(t *testing.T, shards, n int, cfg Config) (*ShardedBase, []*MobileNode) {
	t.Helper()
	s := NewShardedBase(shardFleetOrigin(n), shards, cfg)
	ms := make([]*MobileNode, n)
	for i := range ms {
		ms[i] = NewShardedMobileNode(fmt.Sprintf("m%d", i), s)
		for k := 0; k < 3; k++ {
			if err := ms[i].Run(workload.Deposit(fmt.Sprintf("Td%d.%d", i, k), tx.Tentative, shardAcct(i), 5)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s, ms
}

// connectAllSharded reconnects every mobile concurrently.
func connectAllSharded(t *testing.T, ms []*MobileNode) []*ConnectOutcome {
	t.Helper()
	outs := make([]*ConnectOutcome, len(ms))
	errs := make([]error, len(ms))
	var wg sync.WaitGroup
	wg.Add(len(ms))
	for i := range ms {
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = ms[i].ConnectMerge()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("mobile %d: %v", i, err)
		}
	}
	return outs
}

// TestShardRouterPartition: the router is deterministic, covers every
// shard index, and honors a custom ShardFn (including one returning
// negative values, which must still land in range).
func TestShardRouterPartition(t *testing.T) {
	r := newShardRouter(4, nil)
	seen := map[int]bool{}
	for i := 0; i < 256; i++ {
		it := model.Item(fmt.Sprintf("item%d", i))
		k := r.Shard(it)
		if k != r.Shard(it) {
			t.Fatalf("router not deterministic for %s", it)
		}
		if k < 0 || k >= 4 {
			t.Fatalf("shard %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) != 4 {
		t.Errorf("default router used %d of 4 shards over 256 items", len(seen))
	}
	neg := newShardRouter(3, func(it model.Item) int { return -1 - len(it) })
	for _, it := range []model.Item{"a", "bb", "ccc"} {
		if k := neg.Shard(it); k < 0 || k >= 3 {
			t.Errorf("negative ShardFn leaked out-of-range shard %d for %s", k, it)
		}
	}
}

// TestShardedOneShardMatchesPlainCluster: N=1 must be the plain cluster
// — same outcomes, same counters, same master, byte for byte.
func TestShardedOneShardMatchesPlainCluster(t *testing.T) {
	const n = 4
	run := func(sharded bool) (model.State, cost.Counts) {
		var ms []*MobileNode
		var master func() model.State
		var counts func() cost.Counts
		if sharded {
			s, fleet := shardedDisjointFleet(t, 1, n, Config{})
			ms, master, counts = fleet, s.Master, s.Counters
		} else {
			b := NewBaseCluster(shardFleetOrigin(n), Config{})
			for i := 0; i < n; i++ {
				m := NewMobileNode(fmt.Sprintf("m%d", i), b)
				for k := 0; k < 3; k++ {
					if err := m.Run(workload.Deposit(fmt.Sprintf("Td%d.%d", i, k), tx.Tentative, shardAcct(i), 5)); err != nil {
						t.Fatal(err)
					}
				}
				ms = append(ms, m)
			}
			master = b.Master
			counts = func() cost.Counts { return b.Counters().Snapshot() }
		}
		for _, m := range ms {
			if out, err := m.ConnectMerge(); err != nil || !out.Merged {
				t.Fatalf("connect: out=%+v err=%v", out, err)
			}
		}
		return master(), counts()
	}
	plainMaster, plainCounts := run(false)
	shardMaster, shardCounts := run(true)
	if !plainMaster.Equal(shardMaster) {
		t.Errorf("masters diverged:\nplain   %s\nsharded %s", plainMaster, shardMaster)
	}
	if plainCounts != shardCounts {
		t.Errorf("counters diverged:\nplain   %+v\nsharded %+v", plainCounts, shardCounts)
	}
}

// TestShardedConcurrentMatchesSomeSerialOrder: mobiles conflicting on the
// shared priced item reconnect concurrently against a 4-shard tier. Each
// merge spans p's shard and the mobile's account shard, so the two-phase
// cross-shard path carries the conflict — and the result must still be
// final-state-equivalent to some serial admission order.
func TestShardedConcurrentMatchesSomeSerialOrder(t *testing.T) {
	const n, shards = 3, 4
	build := func() (*ShardedBase, []*MobileNode) {
		s := NewShardedBase(shardFleetOrigin(n), shards, Config{})
		ms := make([]*MobileNode, n)
		for i := range ms {
			ms[i] = NewShardedMobileNode(fmt.Sprintf("m%d", i), s)
			if err := ms[i].Run(workload.SetPrice(fmt.Sprintf("Tp%d", i), tx.Tentative, "p", model.Value(100+11*i))); err != nil {
				t.Fatal(err)
			}
			if err := ms[i].Run(workload.Deposit(fmt.Sprintf("Td%d", i), tx.Tentative, shardAcct(i), 5)); err != nil {
				t.Fatal(err)
			}
		}
		return s, ms
	}
	var serialStates []model.State
	for _, perm := range permutations(n) {
		s, ms := build()
		for _, i := range perm {
			if _, err := ms[i].ConnectMerge(); err != nil {
				t.Fatal(err)
			}
		}
		serialStates = append(serialStates, s.Master())
	}
	for trial := 0; trial < 8; trial++ {
		s, ms := build()
		connectAllSharded(t, ms)
		if c := s.Counters(); c.CrossShardMerges == 0 {
			t.Fatalf("trial %d: conflict fleet drove no cross-shard merges", trial)
		}
		got := s.Master()
		found := false
		for _, want := range serialStates {
			if got.Equal(want) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("trial %d: concurrent sharded master %s matches no serial order %v",
				trial, got, serialStates)
		}
	}
}

// TestShardedCountersMatchSerialAdmission: on the disjoint fleet the
// batched per-shard admission queues must charge exactly what
// Config.SerialAdmission charges. The exclusions follow the E13/E15
// convention: BaseGraphOps/BaseBackoutOps scale with the observed base
// prefix and MergeRetries/AdmitBatches describe the pipeline's shape,
// not work the serial baseline performs.
func TestShardedCountersMatchSerialAdmission(t *testing.T) {
	const n, shards = 8, 4
	run := func(serial bool) cost.Counts {
		s, ms := shardedDisjointFleet(t, shards, n, Config{SerialAdmission: serial})
		connectAllSharded(t, ms)
		return s.Counters()
	}
	ser := run(true)
	bat := run(false)
	ser.BaseGraphOps, bat.BaseGraphOps = 0, 0
	ser.BaseBackoutOps, bat.BaseBackoutOps = 0, 0
	ser.MergeRetries, bat.MergeRetries = 0, 0
	ser.AdmitBatches, bat.AdmitBatches = 0, 0
	if ser != bat {
		t.Errorf("counter totals diverged:\nserial  %+v\nbatched %+v", ser, bat)
	}
}

// TestCrossShardMergeMatchesSingleShardBaseline: the same
// transfer-carrying fleet runs against 4 shards (two-phase cross-shard
// admission) and 1 shard (every merge under one mutex). The workload is
// additive, so the final masters must be identical whatever the
// interleaving — partitioning must never change the merged outcome.
func TestCrossShardMergeMatchesSingleShardBaseline(t *testing.T) {
	const n = 6
	build := func(shards int) (*ShardedBase, []*MobileNode) {
		s := NewShardedBase(shardFleetOrigin(n), shards, Config{})
		ms := make([]*MobileNode, n)
		for i := range ms {
			ms[i] = NewShardedMobileNode(fmt.Sprintf("m%d", i), s)
			if err := ms[i].Run(workload.Deposit(fmt.Sprintf("Td%d", i), tx.Tentative, shardAcct(i), 5)); err != nil {
				t.Fatal(err)
			}
			if err := ms[i].Run(workload.Transfer(fmt.Sprintf("Tx%d", i), tx.Tentative, shardAcct(i), shardAcct((i+1)%n), 3)); err != nil {
				t.Fatal(err)
			}
		}
		return s, ms
	}
	baseline, baseMs := build(1)
	for _, m := range baseMs {
		if out, err := m.ConnectMerge(); err != nil || !out.Merged {
			t.Fatalf("baseline connect: out=%+v err=%v", out, err)
		}
	}
	for trial := 0; trial < 4; trial++ {
		s, ms := build(4)
		outs := connectAllSharded(t, ms)
		for i, out := range outs {
			if !out.Merged {
				t.Errorf("trial %d mobile %d not merged: %+v", trial, i, out)
			}
		}
		if c := s.Counters(); c.CrossShardMerges == 0 {
			t.Errorf("trial %d: transfer fleet drove no cross-shard merges", trial)
		}
		if got, want := s.Master(), baseline.Master(); !got.Equal(want) {
			t.Errorf("trial %d: 4-shard master %s != 1-shard baseline %s", trial, got, want)
		}
	}
}

// TestCrossShardRetryAfterPrepare: the two-phase admit must detect a
// shard whose history moved between the combined prepare and the
// validate step, retry, and still land the merge with nothing lost.
func TestCrossShardRetryAfterPrepare(t *testing.T) {
	const n = 8
	s := NewShardedBase(shardFleetOrigin(n), 4, Config{})
	// Pick two accounts the router provably places on different shards.
	from, to := 0, -1
	for j := 1; j < n; j++ {
		if s.ShardOf(shardAcct(j)) != s.ShardOf(shardAcct(from)) {
			to = j
			break
		}
	}
	if to < 0 {
		t.Fatal("router put every account on one shard")
	}
	m := NewShardedMobileNode("m0", s)
	if err := m.Run(workload.Transfer("Tx0", tx.Tentative, shardAcct(from), shardAcct(to), 3)); err != nil {
		t.Fatal(err)
	}
	injected := false
	s.hookAfterPrepare = func(attempt int) {
		if !injected {
			injected = true
			if err := s.ExecBase(workload.SetPrice("Bx", tx.Base, shardAcct(from), 107)); err != nil {
				t.Error(err)
			}
		}
	}
	out, err := m.ConnectMerge()
	if err != nil || !out.Merged {
		t.Fatalf("connect: out=%+v err=%v", out, err)
	}
	if !injected {
		t.Fatal("hookAfterPrepare never fired")
	}
	c := s.Counters()
	if c.MergeRetries == 0 {
		t.Errorf("invalidated prepare charged no retry: %+v", c)
	}
	master := s.Master()
	// 107 (injected base assignment) - 3 (re-executed transfer out) and 100 + 3.
	if got := master.Get(shardAcct(from)); got != 104 {
		t.Errorf("acct %d = %d, want 104", from, got)
	}
	if got := master.Get(shardAcct(to)); got != 103 {
		t.Errorf("acct %d = %d, want 103", to, got)
	}
}

// TestCrossShardAllContendedSmoke: every mobile's merge spans every
// shard (a wide transfer chain touching one account per shard region),
// all reconnecting at once while base traffic lands. The ascending-order
// shard lock acquisition must make this complete — a deadlock here hangs
// the test run.
func TestCrossShardAllContendedSmoke(t *testing.T) {
	const n, shards = 8, 4
	s := NewShardedBase(shardFleetOrigin(n), shards, Config{})
	ms := make([]*MobileNode, n)
	for i := range ms {
		ms[i] = NewShardedMobileNode(fmt.Sprintf("m%d", i), s)
		// Two transfers chained over three accounts: with n=8 accounts
		// FNV-scattered over 4 shards, the union footprint crosses shards
		// in both directions of the index order.
		a, b, c := shardAcct(i), shardAcct((i+3)%n), shardAcct((i+5)%n)
		if err := ms[i].Run(workload.Transfer(fmt.Sprintf("Tx%d a", i), tx.Tentative, a, b, 1)); err != nil {
			t.Fatal(err)
		}
		if err := ms[i].Run(workload.Transfer(fmt.Sprintf("Tx%d b", i), tx.Tentative, b, c, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Bounded base traffic: enough to race the merges' prepare windows,
	// but finite — an unthrottled flood would legitimately starve the
	// optimistic prepares on a small machine, which is not what this
	// smoke is for.
	var basewg sync.WaitGroup
	basewg.Add(1)
	go func() {
		defer basewg.Done()
		for k := 0; k < 64; k++ {
			if err := s.ExecBase(workload.Deposit(fmt.Sprintf("B%d", k), tx.Base, shardAcct(k%n), 1)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	connectAllSharded(t, ms)
	basewg.Wait()
	if c := s.Counters(); c.CrossShardMerges == 0 {
		t.Errorf("contended fleet drove no cross-shard merges: %+v", c)
	}
}

// TestWindowBarrierNoMixedPrefix: a checkout racing AdvanceWindow must
// never observe a mixed-window prefix — every per-shard token inside one
// returned checkout carries the same WindowID, and successive WindowID
// reads are monotonic.
func TestWindowBarrierNoMixedPrefix(t *testing.T) {
	const n, shards, checkouts = 4, 4, 200
	s := NewShardedBase(shardFleetOrigin(n), shards, Config{})
	stop := make(chan struct{})
	var adv sync.WaitGroup
	adv.Add(1)
	go func() {
		defer adv.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.AdvanceWindow()
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			last := 0
			for k := 0; k < checkouts; k++ {
				ck := s.CheckoutReplica(fmt.Sprintf("m%d", g))
				if len(ck.Shards) != shards {
					t.Errorf("checkout carries %d shard tokens, want %d", len(ck.Shards), shards)
					return
				}
				for i, part := range ck.Shards {
					if part.WindowID != ck.WindowID {
						t.Errorf("mixed-window checkout: shard %d token window %d, checkout window %d",
							i, part.WindowID, ck.WindowID)
						return
					}
				}
				if ck.WindowID < last {
					t.Errorf("window went backwards: %d after %d", ck.WindowID, last)
					return
				}
				last = ck.WindowID
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	adv.Wait()
}

// TestCrossShardRetryUploadParity is the cost-accounting audit for the
// two-phase cross-shard path: a reconnect whose combined prepare is
// invalidated and retried must bill the mobile's upload (set entries,
// graph edges, the mobile-side G(Hm) build) exactly once — identical to
// the single-attempt reconnect — while still recording the retry and the
// second attempt's base-side graph work. The per-attempt delta
// accumulators must not re-add the attempt-independent charges.
func TestCrossShardRetryUploadParity(t *testing.T) {
	const n = 8
	run := func(forceRetry bool) cost.Counts {
		s := NewShardedBase(shardFleetOrigin(n), 4, Config{})
		from, to := 0, -1
		for j := 1; j < n; j++ {
			if s.ShardOf(shardAcct(j)) != s.ShardOf(shardAcct(from)) {
				to = j
				break
			}
		}
		if to < 0 {
			t.Fatal("router put every account on one shard")
		}
		m := NewShardedMobileNode("m0", s)
		if err := m.Run(workload.Transfer("Tx0", tx.Tentative, shardAcct(from), shardAcct(to), 3)); err != nil {
			t.Fatal(err)
		}
		if forceRetry {
			injected := false
			s.hookAfterPrepare = func(attempt int) {
				if !injected {
					injected = true
					if err := s.ExecBase(workload.SetPrice("Bx", tx.Base, shardAcct(from), 107)); err != nil {
						t.Error(err)
					}
				}
			}
		}
		out, err := m.ConnectMerge()
		if err != nil || !out.Merged {
			t.Fatalf("connect (retry=%v): out=%+v err=%v", forceRetry, out, err)
		}
		return s.Counters()
	}
	single := run(false)
	retried := run(true)

	if single.MergeRetries != 0 || retried.MergeRetries == 0 {
		t.Fatalf("MergeRetries = %d/%d, want 0 and >0", single.MergeRetries, retried.MergeRetries)
	}
	if retried.SetEntriesSent != single.SetEntriesSent {
		t.Errorf("SetEntriesSent = %d after a cross-shard retry, want %d (upload re-billed?)",
			retried.SetEntriesSent, single.SetEntriesSent)
	}
	if retried.GraphEdgesSent != single.GraphEdgesSent {
		t.Errorf("GraphEdgesSent = %d after a cross-shard retry, want %d (upload re-billed?)",
			retried.GraphEdgesSent, single.GraphEdgesSent)
	}
	if retried.MobileGraphOps != single.MobileGraphOps {
		t.Errorf("MobileGraphOps = %d after a cross-shard retry, want %d (G(Hm) built once)",
			retried.MobileGraphOps, single.MobileGraphOps)
	}
	if retried.CrossShardMerges != 1 || single.CrossShardMerges != 1 {
		t.Errorf("CrossShardMerges = %d/%d, want 1/1", retried.CrossShardMerges, single.CrossShardMerges)
	}
	// The invalidated attempt's base-side graph work really happened: the
	// retried reconnect must bill MORE of it, not an identical total.
	if retried.BaseGraphOps <= single.BaseGraphOps {
		t.Errorf("BaseGraphOps = %d after a retried rebuild, want > %d (failed attempt's work dropped?)",
			retried.BaseGraphOps, single.BaseGraphOps)
	}
}
