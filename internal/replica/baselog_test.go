package replica

import (
	"bytes"
	"testing"

	"tiermerge/internal/tx"
	"tiermerge/internal/workload"
)

// TestBaseRecoveryRebuildsMasterAndWindow journals a busy base tier —
// ordinary commits, merges (forwarded updates + re-executions), a window
// advance — crashes it, and recovers an equivalent cluster.
func TestBaseRecoveryRebuildsMasterAndWindow(t *testing.T) {
	var journal bytes.Buffer
	b := NewBaseCluster(origin(), Config{})
	if err := b.AttachJournal(&journal); err != nil {
		t.Fatal(err)
	}
	if err := b.ExecBase(workload.Deposit("Tb1", tx.Base, "x", 10)); err != nil {
		t.Fatal(err)
	}
	m := NewMobileNode("m1", b)
	if err := m.Run(workload.Deposit("Tm1", tx.Tentative, "y", 5)); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(workload.SetPrice("Tm2", tx.Tentative, "x", 77)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ConnectMerge(); err != nil {
		t.Fatal(err)
	}
	b.AdvanceWindow()
	if err := b.ExecBase(workload.Deposit("Tb2", tx.Base, "z", 3)); err != nil {
		t.Fatal(err)
	}

	rec, _, err := RecoverBaseCluster(bytes.NewReader(journal.Bytes()), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Master().Equal(b.Master()) {
		t.Errorf("recovered master %s != %s", rec.Master(), b.Master())
	}
	if rec.WindowID() != b.WindowID() {
		t.Errorf("recovered window %d != %d", rec.WindowID(), b.WindowID())
	}
	if rec.HistoryLen() != b.HistoryLen() {
		t.Errorf("recovered window history len %d != %d", rec.HistoryLen(), b.HistoryLen())
	}
	// The recovered cluster keeps working: a mobile merges against it.
	m2 := NewMobileNode("m2", rec)
	if err := m2.Run(workload.Deposit("Tm3", tx.Tentative, "w", 9)); err != nil {
		t.Fatal(err)
	}
	out, err := m2.ConnectMerge()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Merged || out.Saved != 1 {
		t.Errorf("post-recovery merge: %+v", out)
	}
	if got := rec.Master().Get("w"); got != 409 {
		t.Errorf("post-recovery w = %d, want 409", got)
	}
}

// TestBaseRecoveryDropsTornTail: a commit torn mid-record is dropped — the
// client was never acknowledged.
func TestBaseRecoveryDropsTornTail(t *testing.T) {
	var journal bytes.Buffer
	b := NewBaseCluster(origin(), Config{})
	if err := b.AttachJournal(&journal); err != nil {
		t.Fatal(err)
	}
	if err := b.ExecBase(workload.Deposit("Tb1", tx.Base, "x", 10)); err != nil {
		t.Fatal(err)
	}
	sizeAfterFirst := journal.Len()
	if err := b.ExecBase(workload.Deposit("Tb2", tx.Base, "x", 100)); err != nil {
		t.Fatal(err)
	}
	// Tear inside the second commit's records.
	torn := journal.Bytes()[:sizeAfterFirst+20]
	rec, _, err := RecoverBaseCluster(bytes.NewReader(torn), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Master().Get("x"); got != 110 {
		t.Errorf("recovered x = %d, want 110 (second commit dropped)", got)
	}
}

// TestBaseRecoveryDetectsTamper: a flipped write image fails verification.
func TestBaseRecoveryDetectsTamper(t *testing.T) {
	var journal bytes.Buffer
	b := NewBaseCluster(origin(), Config{})
	if err := b.AttachJournal(&journal); err != nil {
		t.Fatal(err)
	}
	if err := b.ExecBase(workload.Deposit("Tb1", tx.Base, "x", 10)); err != nil {
		t.Fatal(err)
	}
	s := journal.String()
	tampered := bytes.Replace([]byte(s), []byte(`"after":110`), []byte(`"after":111`), 1)
	if bytes.Equal(tampered, []byte(s)) {
		t.Fatal("tamper target not found")
	}
	if _, _, err := RecoverBaseCluster(bytes.NewReader(tampered), Config{}); err == nil {
		t.Error("tampered base journal recovered without error")
	}
}

// TestBaseRecoveryLateAttach: attaching after commits still journals them.
func TestBaseRecoveryLateAttach(t *testing.T) {
	b := NewBaseCluster(origin(), Config{})
	if err := b.ExecBase(workload.Deposit("Tb1", tx.Base, "x", 10)); err != nil {
		t.Fatal(err)
	}
	var journal bytes.Buffer
	if err := b.AttachJournal(&journal); err != nil {
		t.Fatal(err)
	}
	if err := b.ExecBase(workload.Deposit("Tb2", tx.Base, "y", 4)); err != nil {
		t.Fatal(err)
	}
	rec, _, err := RecoverBaseCluster(bytes.NewReader(journal.Bytes()), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Master().Equal(b.Master()) {
		t.Errorf("recovered %s != %s", rec.Master(), b.Master())
	}
}
