package replica

import (
	"errors"
	"fmt"
	"runtime"
	"sort"

	"tiermerge/internal/cost"
	"tiermerge/internal/history"
	"tiermerge/internal/lockmgr"
	"tiermerge/internal/model"
	"tiermerge/internal/obs"
)

// Batched admission. When several prepared merges race for the admission
// critical section, each paying a lock-manager round trip plus a cluster
// mutex acquisition serializes the tail of every reconnect. Instead,
// prepared merges enqueue on an admission queue; the first arrival becomes
// the leader and drains the queue, admitting every queued merge whose
// admission set (merge footprint plus lock plan) is pairwise disjoint from
// the rest of its batch in ONE critical section: one sorted pass over the
// union of the members' lock plans, one cluster-mutex acquisition, then
// each member validated and installed in turn.
//
// Correctness does not rest on the batch selection: inside the critical
// section every member is still validated individually, in order, against
// the live history — a member invalidated by an earlier member's install
// (or by anything else) fails its own validation and retries, exactly as
// under direct admission. Disjointness serves two purposes: the leader can
// acquire the union of the lock plans in one globally sorted pass without
// self-conflicts (two members holding overlapping exclusive items would
// deadlock a single acquiring goroutine), and members cannot invalidate
// each other — everything an installed merge appends to the history touches
// only its own admission set — so a disjoint batch admits wholesale.

// admitRequest is one prepared merge waiting for admission.
type admitRequest struct {
	ck Checkout
	hm *history.Augmented
	p  *preparedMerge
	// done receives the admission result; buffered so the leader never
	// blocks delivering it.
	done chan admitResult
	// set memoizes admitSet.
	set model.ItemSet
}

// admitResult is what one admission attempt resolved to.
type admitResult struct {
	out      *ConnectOutcome
	admitted bool
	cause    obs.Cause
	batch    int
	err      error
}

// admitSet is the request's admission set: the merge footprint (items whose
// base history must not have changed) plus the lock plan (items the install
// will touch). Batch disjointness is computed over it.
func (r *admitRequest) admitSet() model.ItemSet {
	if r.set == nil {
		r.set = make(model.ItemSet, len(r.p.footprint))
		for it := range r.p.footprint {
			r.set.Add(it)
		}
		_, items, _ := r.p.lockPlan(r.ck.MobileID)
		for _, it := range items {
			r.set.Add(it)
		}
	}
	return r.set
}

// admitPrepared routes a prepared merge through admission: the batched
// queue by default, or a private critical section under
// Config.SerialAdmission. batch reports how many merges shared the
// admitting critical section (0 under serial admission).
//
//tiermerge:locks(none)
//tiermerge:blocking
func (b *BaseCluster) admitPrepared(ck Checkout, hm *history.Augmented, p *preparedMerge) (out *ConnectOutcome, admitted bool, cause obs.Cause, batch int, err error) {
	if b.cfg.SerialAdmission {
		out, admitted, cause, err = b.admitDirect(ck, hm, p)
		return out, admitted, cause, 0, err
	}
	req := &admitRequest{ck: ck, hm: hm, p: p, done: make(chan admitResult, 1)}
	b.admitMu.Lock()
	b.admitQ = append(b.admitQ, req)
	leader := !b.admitActive
	if leader {
		b.admitActive = true
	}
	b.admitMu.Unlock()
	if leader {
		if gate := b.admitGate; gate != nil {
			for {
				b.admitMu.Lock()
				queued := len(b.admitQ)
				b.admitMu.Unlock()
				if gate(queued) {
					break
				}
				runtime.Gosched()
			}
		}
		b.admitDrain()
	}
	r := <-req.done
	return r.out, r.admitted, r.cause, r.batch, r.err
}

// admitDrain is the admission leader loop: it repeatedly snapshots the
// queue, carves it into disjoint batches, and admits each batch in one
// critical section. Requests arriving while a batch runs land in the next
// snapshot. Leadership ends only when the queue is observed empty under
// admitMu — a request enqueued after that observation found admitActive
// false and leads itself, so no request is ever stranded.
//
//tiermerge:blocking
func (b *BaseCluster) admitDrain() {
	for {
		b.admitMu.Lock()
		q := b.admitQ
		b.admitQ = nil
		if len(q) == 0 {
			b.admitActive = false
			b.admitMu.Unlock()
			return
		}
		b.admitMu.Unlock()
		for len(q) > 0 {
			var batch []*admitRequest
			batch, q = selectBatch(q)
			b.admitBatch(batch)
		}
	}
}

// selectBatch greedily picks, from the front of the queue, a maximal set of
// requests with pairwise-disjoint admission sets. The head request is
// always selected, so FIFO progress is guaranteed; requests that do not fit
// stay queued for the following batch.
func selectBatch(q []*admitRequest) (batch, rest []*admitRequest) {
	batch = append(batch, q[0])
	taken := make(model.ItemSet)
	for it := range q[0].admitSet() {
		taken.Add(it)
	}
	for _, req := range q[1:] {
		s := req.admitSet()
		if s.Disjoint(taken) {
			batch = append(batch, req)
			for it := range s {
				taken.Add(it)
			}
		} else {
			rest = append(rest, req)
		}
	}
	return batch, rest
}

// admitBatch admits one disjoint batch: acquire the union of the members'
// lock plans in one globally sorted pass (the ExecBase discipline, so batch
// admission cannot deadlock against concurrent base transactions), validate
// and install each member under a single cluster-mutex critical section,
// release, and deliver every result. Results are delivered strictly after
// all locks are dropped — the leader never blocks a member on itself.
//
//tiermerge:blocking
func (b *BaseCluster) admitBatch(batch []*admitRequest) {
	type lockReq struct {
		item  model.Item
		owner string
		excl  bool
	}
	var plan []lockReq
	var owners []string
	for _, req := range batch {
		owner, items, writes := req.p.lockPlan(req.ck.MobileID)
		if len(items) > 0 {
			owners = append(owners, owner)
		}
		for _, it := range items {
			plan = append(plan, lockReq{item: it, owner: owner, excl: writes.Has(it)})
		}
	}
	sort.Slice(plan, func(i, j int) bool { return plan[i].item < plan[j].item })
	releaseAll := func() {
		for _, o := range owners {
			b.lm.ReleaseAll(o)
		}
	}
	if len(plan) > 0 {
		for attempt := 0; ; attempt++ {
			var lockErr error
			for _, lr := range plan {
				mode := lockmgr.Shared
				if lr.excl {
					mode = lockmgr.Exclusive
				}
				if lockErr = b.lm.Acquire(lr.owner, lr.item, mode); lockErr != nil {
					break
				}
			}
			if lockErr == nil {
				break
			}
			releaseAll()
			if errors.Is(lockErr, lockmgr.ErrDeadlock) && attempt < 10 {
				continue
			}
			err := fmt.Errorf("replica: batch merge locks: %w", lockErr)
			for _, req := range batch {
				req.done <- admitResult{err: err}
			}
			return
		}
	}

	results := make([]admitResult, len(batch))
	b.mu.Lock()
	for i, req := range batch {
		out, admitted, cause, err := b.admitOneLocked(req.ck, req.hm, req.p)
		results[i] = admitResult{out: out, admitted: admitted, cause: cause, batch: len(batch), err: err}
	}
	b.mu.Unlock()
	releaseAll()
	b.counters.Update(func(c *cost.Counts) { c.AdmitBatches++ })
	for i, req := range batch {
		req.done <- results[i]
	}
}
