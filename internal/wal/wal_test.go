package wal

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"tiermerge/internal/history"
	"tiermerge/internal/model"
	"tiermerge/internal/tx"
	"tiermerge/internal/workload"
)

// journalHistory runs n generated transactions from origin, journaling each.
func journalHistory(t *testing.T, buf *bytes.Buffer, seed int64, n int) (model.State, *history.Augmented) {
	t.Helper()
	gen := workload.NewGenerator(workload.Config{Seed: seed, Items: 10})
	origin := gen.OriginState()
	w := NewWriter(buf)
	if err := w.Checkout(3, 7, origin); err != nil {
		t.Fatal(err)
	}
	h := &history.History{}
	cur := origin.Clone()
	for i := 0; i < n; i++ {
		txn := gen.Txn(tx.Tentative)
		next, eff, err := txn.Exec(cur, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.LogTxn(txn, eff); err != nil {
			t.Fatal(err)
		}
		h.Append(txn)
		cur = next
	}
	aug, err := history.Run(h, origin)
	if err != nil {
		t.Fatal(err)
	}
	return origin, aug
}

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	origin, want := journalHistory(t, &buf, 11, 8)

	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(recs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WindowID != 3 || rep.Pos != 7 {
		t.Errorf("checkout metadata: window=%d pos=%d", rep.WindowID, rep.Pos)
	}
	if !rep.Origin.Equal(origin) {
		t.Errorf("origin = %s, want %s", rep.Origin, origin)
	}
	if rep.Augmented.H.Len() != want.H.Len() {
		t.Fatalf("replayed %d transactions, want %d", rep.Augmented.H.Len(), want.H.Len())
	}
	if !rep.Augmented.Final().Equal(want.Final()) {
		t.Errorf("replayed final %s, want %s", rep.Augmented.Final(), want.Final())
	}
	if rep.Dropped != 0 {
		t.Errorf("dropped = %d, want 0", rep.Dropped)
	}
	// Effects must match, entry by entry.
	for i := range want.Effects {
		w, g := want.Effects[i], rep.Augmented.Effects[i]
		if len(w.Writes) != len(g.Writes) {
			t.Errorf("txn %d: write counts differ", i)
		}
	}
}

func TestReplayDropsUncommittedTail(t *testing.T) {
	var buf bytes.Buffer
	gen := workload.NewGenerator(workload.Config{Seed: 21, Items: 8})
	origin := gen.OriginState()
	w := NewWriter(&buf)
	if err := w.Checkout(1, 0, origin); err != nil {
		t.Fatal(err)
	}
	t1 := workload.Deposit("T1", tx.Tentative, "d1", 5)
	_, eff, err := t1.Exec(origin, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.LogTxn(t1, eff); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-transaction: begin without commit.
	t2 := workload.Deposit("T2", tx.Tentative, "d2", 9)
	code, err := tx.MarshalTransaction(t2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(Record{Kind: KindBegin, TxID: "T2", Txn: code}); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(recs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Augmented.H.Len() != 1 || rep.Dropped != 1 {
		t.Errorf("replayed %d committed, dropped %d; want 1/1",
			rep.Augmented.H.Len(), rep.Dropped)
	}
}

func TestReplayToleratesTornFinalLine(t *testing.T) {
	var buf bytes.Buffer
	journalHistory(t, &buf, 31, 3)
	// Tear the journal mid-line, as a crash during a write would.
	data := buf.Bytes()
	data = data[:len(data)-7]
	recs, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(recs); err != nil {
		// Acceptable outcomes: the torn line was a commit (transaction
		// dropped) or mid-transaction records vanished — but a hard corrupt
		// error must not occur for a clean prefix tear unless the tear left
		// a stray read/write. Replay may legitimately report corruption
		// only when the tear bisected a transaction's record group in a
		// contradictory way; for a tail tear it must succeed.
		t.Fatalf("tail tear must replay the committed prefix: %v", err)
	}
}

func TestReplayDetectsTamperedValues(t *testing.T) {
	var buf bytes.Buffer
	journalHistory(t, &buf, 41, 4)
	s := buf.String()
	// Corrupt a logged write image.
	tampered := strings.Replace(s, `"kind":"write"`, `"kind":"write","nonce":1`, 1)
	if tampered == s {
		t.Skip("no write record to tamper with")
	}
	// Change an "after" value instead (guaranteed to exist for a write).
	tampered = tamperAfter(s)
	if tampered == s {
		t.Skip("no after field found")
	}
	recs, err := ReadAll(strings.NewReader(tampered))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(recs); !errors.Is(err, ErrCorrupt) {
		t.Errorf("tampered journal replayed without ErrCorrupt: %v", err)
	}
}

// tamperAfter flips the first `"after":N` to a different value.
func tamperAfter(s string) string { return tamperField(s, `"after":`) }

// tamperField flips the numeric value after the first occurrence of the
// given JSON key prefix to a different value.
func tamperField(s, prefix string) string {
	idx := strings.Index(s, prefix)
	if idx < 0 {
		return s
	}
	// Walk the number and bump its last digit (avoiding 9 rollover by
	// replacing with a different digit).
	j := idx + len(prefix)
	k := j
	for k < len(s) && (s[k] == '-' || (s[k] >= '0' && s[k] <= '9')) {
		k++
	}
	if k == j {
		return s
	}
	d := s[k-1]
	nd := byte('1')
	if d == '1' {
		nd = '2'
	}
	return s[:k-1] + string(nd) + s[k:]
}

func TestReplayRejectsMalformedJournals(t *testing.T) {
	valid := func() []Record {
		var buf bytes.Buffer
		journalHistory(t, &buf, 51, 2)
		recs, err := ReadAll(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}

	t.Run("missing checkout", func(t *testing.T) {
		recs := valid()[1:]
		if _, err := Replay(recs); !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("duplicate checkout", func(t *testing.T) {
		recs := valid()
		recs = append(recs, recs[0])
		if _, err := Replay(recs); !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("stray commit", func(t *testing.T) {
		recs := valid()
		recs = append(recs, Record{Kind: KindCommit, TxID: "ghost"})
		if _, err := Replay(recs); !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("stray read", func(t *testing.T) {
		recs := valid()
		recs = append(recs, Record{Kind: KindRead, TxID: "ghost", Item: "d1"})
		if _, err := Replay(recs); !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("empty journal", func(t *testing.T) {
		if _, err := Replay(nil); !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v", err)
		}
	})
}

// TestReplayAtEveryCrashPoint cuts a journal at every byte offset and
// requires recovery to either replay a committed prefix or fail with a
// clean ErrCorrupt — never panic, never fabricate transactions, and never
// shrink a prefix that a longer cut could replay.
func TestReplayAtEveryCrashPoint(t *testing.T) {
	var buf bytes.Buffer
	journalHistory(t, &buf, 71, 5)
	data := buf.Bytes()
	prevCommitted := -1
	for cut := 0; cut <= len(data); cut++ {
		recs, err := ReadAll(bytes.NewReader(data[:cut]))
		if err != nil {
			continue // unreadable torn line prefix: acceptable
		}
		rep, err := Replay(recs)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut %d: non-ErrCorrupt failure: %v", cut, err)
			}
			continue
		}
		n := rep.Augmented.H.Len()
		if n > 5 {
			t.Fatalf("cut %d: fabricated transactions: %d", cut, n)
		}
		if n < prevCommitted {
			// Committed prefixes must be monotone in the cut point.
			t.Fatalf("cut %d: committed prefix shrank from %d to %d", cut, prevCommitted, n)
		}
		prevCommitted = n
	}
	if prevCommitted != 5 {
		t.Fatalf("full journal replayed %d of 5", prevCommitted)
	}
}

// TestReadAllRejectsMidJournalCorruption is the regression test for the
// torn-line guard bug: a malformed line in the *middle* of a journal,
// followed by validly committed transactions, must fail with ErrCorrupt —
// silently truncating there would drop acknowledged work.
func TestReadAllRejectsMidJournalCorruption(t *testing.T) {
	var buf bytes.Buffer
	journalHistory(t, &buf, 61, 4)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("journal too short: %d lines", len(lines))
	}
	// Mangle an interior line (not the last one).
	mid := len(lines) / 2
	lines[mid] = lines[mid][:len(lines[mid])/2]
	damaged := strings.Join(lines, "\n") + "\n"
	if _, err := ReadAll(strings.NewReader(damaged)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("mid-journal corruption: got %v, want ErrCorrupt", err)
	}
}

// TestReadAllDetectsDroppedAndDuplicatedLines: sequence numbers are
// contiguous, so a lost or repeated buffer flush is corruption even though
// every surviving line parses.
func TestReadAllDetectsDroppedAndDuplicatedLines(t *testing.T) {
	var buf bytes.Buffer
	journalHistory(t, &buf, 62, 3)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	mid := len(lines) / 2

	dropped := strings.Join(append(append([]string{}, lines[:mid]...), lines[mid+1:]...), "\n") + "\n"
	if _, err := ReadAll(strings.NewReader(dropped)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("dropped line: got %v, want ErrCorrupt", err)
	}

	dup := append(append([]string{}, lines[:mid+1]...), lines[mid:]...)
	duplicated := strings.Join(dup, "\n") + "\n"
	if _, err := ReadAll(strings.NewReader(duplicated)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("duplicated line: got %v, want ErrCorrupt", err)
	}
}

// TestReadAllToleratesTornFinalLineOnly: the one acceptable damage shape.
func TestReadAllToleratesTornFinalLineOnly(t *testing.T) {
	var buf bytes.Buffer
	journalHistory(t, &buf, 63, 3)
	data := buf.Bytes()
	torn := data[:len(data)-5] // cut mid final line
	recs, err := ReadAll(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("torn final line must be tolerated: %v", err)
	}
	full, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(full)-1 {
		t.Errorf("torn tail: %d records, want %d", len(recs), len(full)-1)
	}
}

// TestScanSalvageReportsTear: salvage mode survives interior damage and
// reports where the journal tears and what it discarded.
func TestScanSalvageReportsTear(t *testing.T) {
	var buf bytes.Buffer
	journalHistory(t, &buf, 64, 4)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	mid := len(lines) / 2
	lines[mid] = "garbage{{{"
	damaged := strings.Join(lines, "\n") + "\n"

	res, err := Scan(strings.NewReader(damaged), Salvage)
	if err != nil {
		t.Fatalf("salvage must not fail: %v", err)
	}
	if !res.Torn || res.TornLine != mid+1 {
		t.Errorf("tear at line %d (torn=%v), want line %d", res.TornLine, res.Torn, mid+1)
	}
	if len(res.Records) != mid {
		t.Errorf("salvaged %d records, want %d", len(res.Records), mid)
	}
	if res.DiscardedLines != len(lines)-mid-1 {
		t.Errorf("discarded %d lines, want %d", res.DiscardedLines, len(lines)-mid-1)
	}
	if res.TornReason == "" {
		t.Error("tear reason empty")
	}
	// The salvaged prefix must itself replay (it is a valid journal
	// prefix) unless the tear bisected a transaction's record group.
	if _, err := Replay(res.Records); err != nil && !errors.Is(err, ErrCorrupt) {
		t.Errorf("salvaged prefix replay: %v", err)
	}
}

// TestReplayDetectsTamperedBeforeImage: prune.ByUndo trusts before-images,
// so Replay must verify them alongside the after-images.
func TestReplayDetectsTamperedBeforeImage(t *testing.T) {
	var buf bytes.Buffer
	journalHistory(t, &buf, 65, 4)
	tampered := tamperField(buf.String(), `"before":`)
	if tampered == buf.String() {
		t.Skip("no before field found")
	}
	recs, err := ReadAll(strings.NewReader(tampered))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(recs); !errors.Is(err, ErrCorrupt) {
		t.Errorf("tampered before-image replayed without ErrCorrupt: %v", err)
	}
}

// TestJournalCarriesDeltas: a pure commutative increment is journaled with
// its delta annotation, a value write (assignment) without one, and replay
// reconstructs the same classification.
func TestJournalCarriesDeltas(t *testing.T) {
	var buf bytes.Buffer
	origin := model.StateOf(map[model.Item]model.Value{"x": 100, "p": 50})
	w := NewWriter(&buf)
	if err := w.Checkout(0, 0, origin); err != nil {
		t.Fatal(err)
	}
	cur := origin.Clone()
	for _, txn := range []*tx.Transaction{
		workload.Deposit("T1", tx.Tentative, "x", 5),
		workload.SetPrice("T2", tx.Tentative, "p", 77),
	} {
		next, eff, err := txn.Exec(cur, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.LogTxn(txn, eff); err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var gotDelta, gotValue bool
	for _, rec := range recs {
		if rec.Kind != KindWrite {
			continue
		}
		switch rec.Item {
		case "x":
			gotDelta = true
			if rec.Delta == nil || *rec.Delta != 5 {
				t.Errorf("deposit write record delta = %v, want 5", rec.Delta)
			}
		case "p":
			gotValue = true
			if rec.Delta != nil {
				t.Errorf("assignment write record carries delta %d", *rec.Delta)
			}
		}
	}
	if !gotDelta || !gotValue {
		t.Fatalf("journal missing write records: delta=%v value=%v", gotDelta, gotValue)
	}
	rep, err := Replay(recs)
	if err != nil {
		t.Fatal(err)
	}
	pure := rep.Augmented.Effects[0].DeltaPure()
	if !pure.Has("x") || rep.Augmented.Effects[0].Deltas["x"] != 5 {
		t.Errorf("replayed effect lost the delta classification: %v", pure)
	}
	if len(rep.Augmented.Effects[1].DeltaPure()) != 0 {
		t.Error("replayed assignment classified as a pure delta")
	}
}

// TestReplayDetectsTamperedDelta: a delta annotation that disagrees with
// the replayed execution — a wrong increment, a delta on a value write, or
// a stripped delta — is ErrCorrupt. A spurious delta would let the merge
// layer elide edges around a non-commutative write.
func TestReplayDetectsTamperedDelta(t *testing.T) {
	build := func() string {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Checkout(0, 0, model.StateOf(map[model.Item]model.Value{"x": 100})); err != nil {
			t.Fatal(err)
		}
		txn := workload.Deposit("T1", tx.Tentative, "x", 5)
		_, eff, err := txn.Exec(model.StateOf(map[model.Item]model.Value{"x": 100}), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.LogTxn(txn, eff); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	cases := map[string]func(string) string{
		"wrong increment": func(s string) string { return tamperField(s, `"delta":`) },
		"stripped delta":  func(s string) string { return strings.Replace(s, `,"delta":5`, ``, 1) },
	}
	for name, tamper := range cases {
		s := build()
		tampered := tamper(s)
		if tampered == s {
			t.Fatalf("%s: tamper had no effect on %q", name, s)
		}
		recs, err := ReadAll(strings.NewReader(tampered))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Replay(recs); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: replayed without ErrCorrupt: %v", name, err)
		}
	}
}
