package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"tiermerge/internal/fault"
	"tiermerge/internal/tx"
	"tiermerge/internal/workload"
)

// Fuzz targets for the recovery surface. Scan and Replay sit between a
// crash (or worse — bit rot, lost flushes) and the database: no byte
// stream, however mangled, may panic them, and anything they do accept
// must satisfy the crash model — a contiguous, verified prefix of what was
// journaled. Seed corpora are checked in under testdata/fuzz; the CI fuzz
// smoke runs each target briefly on every push.

// fuzzJournal builds a deterministic valid journal of n generated
// transactions and returns its bytes plus the committed transaction IDs in
// order.
func fuzzJournal(seed int64, n int) ([]byte, []string) {
	gen := workload.NewGenerator(workload.Config{Seed: seed, Items: 8})
	origin := gen.OriginState()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Checkout(1, 0, origin); err != nil {
		panic(err)
	}
	ids := make([]string, 0, n)
	cur := origin.Clone()
	for i := 0; i < n; i++ {
		txn := gen.Txn(tx.Tentative)
		next, eff, err := txn.Exec(cur, nil)
		if err != nil {
			panic(err)
		}
		if err := w.LogTxn(txn, eff); err != nil {
			panic(err)
		}
		ids = append(ids, txn.ID)
		cur = next
	}
	return buf.Bytes(), ids
}

// FuzzReadAll feeds arbitrary bytes to the strict and salvage scanners.
// Properties: neither panics; salvage never fails on in-memory data; every
// accepted record stream has contiguous sequence numbers from 1; and when
// strict succeeds the two modes agree on the decoded prefix.
func FuzzReadAll(f *testing.F) {
	valid, _ := fuzzJournal(1, 3)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-9]) // torn final line
	f.Add([]byte("not a journal\n"))
	f.Add(fault.Mutate(valid, fault.Mutation{Op: fault.DropLine, Arg: 2}))
	f.Fuzz(func(t *testing.T, data []byte) {
		strictRecs, strictErr := ReadAll(bytes.NewReader(data))
		salv, salvErr := Scan(bytes.NewReader(data), Salvage)
		if salvErr != nil {
			// Only reader-level failures (e.g. a line beyond the scanner
			// buffer) can surface here; they must be errors, not panics.
			return
		}
		for i, r := range salv.Records {
			if r.Seq != int64(i)+1 {
				t.Fatalf("salvage accepted non-contiguous seq %d at index %d", r.Seq, i)
			}
		}
		if strictErr != nil {
			if !errors.Is(strictErr, ErrCorrupt) {
				t.Fatalf("strict scan failed without ErrCorrupt: %v", strictErr)
			}
			return
		}
		if len(strictRecs) != len(salv.Records) {
			t.Fatalf("strict decoded %d records, salvage %d", len(strictRecs), len(salv.Records))
		}
		for i := range strictRecs {
			if strictRecs[i].Seq != salv.Records[i].Seq || strictRecs[i].Kind != salv.Records[i].Kind {
				t.Fatalf("strict and salvage disagree at record %d", i)
			}
		}
	})
}

// FuzzReplay scans arbitrary bytes and replays whatever the scanner
// accepts. Properties: no panic; a successful replay reconstructs
// consistent history/state/effect slices; failures wrap ErrCorrupt.
func FuzzReplay(f *testing.F) {
	valid, _ := fuzzJournal(2, 3)
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte(`{"seq":1,"kind":"checkout","window":1,"origin":{"x":5}}` + "\n"))
	f.Add([]byte(`{"seq":1,"kind":"commit","tx":"T1"}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := Scan(bytes.NewReader(data), Salvage)
		if err != nil {
			return
		}
		rep, err := Replay(res.Records)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("replay failed without ErrCorrupt: %v", err)
			}
			return
		}
		n := rep.Augmented.H.Len()
		if len(rep.Augmented.States) != n+1 || len(rep.Augmented.Effects) != n {
			t.Fatalf("inconsistent replayed run: %d txns, %d states, %d effects",
				n, len(rep.Augmented.States), len(rep.Augmented.Effects))
		}
	})
}

// FuzzMutatedRecovery corrupts a known-good journal with one deterministic
// fault (truncation, bit flip, dropped or duplicated line, torn tail) and
// requires the recovery pipeline to either refuse the image with
// ErrCorrupt or reconstruct a committed-ID prefix of the original history.
// Bit flips may forge a semantically different but self-consistent record,
// so the prefix property is only asserted for the structural faults — for
// flips the target still proves no-panic and error taxonomy.
func FuzzMutatedRecovery(f *testing.F) {
	f.Add(int64(1), int64(0), int64(40), int64(0))
	f.Add(int64(2), int64(1), int64(7), int64(0))   // flip a bit
	f.Add(int64(3), int64(2), int64(3), int64(0))   // duplicate a line
	f.Add(int64(4), int64(3), int64(2), int64(0))   // drop a line
	f.Add(int64(5), int64(0), int64(200), int64(4)) // truncate + torn garbage
	f.Fuzz(func(t *testing.T, seed, opRaw, arg, torn int64) {
		full, ids := fuzzJournal(seed%16, 3)
		op := fault.Op(((opRaw % 4) + 4) % 4)
		data := fault.Apply(full, fault.Mutation{Op: op, Arg: arg})
		if torn > 0 {
			frag := fmt.Sprintf("{\"seq\":%d", torn)
			data = append(data, frag...)
		}
		res, err := Scan(bytes.NewReader(data), Strict)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("scan failed without ErrCorrupt: %v", err)
			}
			return
		}
		rep, err := Replay(res.Records)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("replay failed without ErrCorrupt: %v", err)
			}
			return
		}
		if op == fault.FlipBit {
			return
		}
		got := rep.Augmented.H.Len()
		if got > len(ids) {
			t.Fatalf("recovered %d committed txns from a journal of %d", got, len(ids))
		}
		for i := 0; i < got; i++ {
			if rep.Augmented.H.Txn(i).ID != ids[i] {
				t.Fatalf("recovered history is not a prefix: txn %d is %s, want %s",
					i, rep.Augmented.H.Txn(i).ID, ids[i])
			}
		}
	})
}
