// Package wal implements the mobile node's write-ahead log. The paper's
// protocol is log-driven end to end: the precedence graph "can be built by
// parsing the log for Hm and the log for Hb ... if read operations (or read
// sets) are recorded in the log" (Section 7.1), the undo approach restores
// logged before-images (Section 6.2), and non-canned systems "record the
// codes of transactions when they are executed" (Section 5.1). This package
// supplies exactly that log: an append-only JSON-lines journal carrying the
// checkout origin, full transaction code, read values and write images —
// enough to reconstruct the tentative history (with effects) after a crash
// and to verify the replayed execution against the logged one.
package wal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"tiermerge/internal/history"
	"tiermerge/internal/model"
	"tiermerge/internal/tx"
)

// ErrCorrupt is wrapped by replay errors caused by a log whose records
// contradict re-execution (torn writes, bit rot, or a mismatched origin).
var ErrCorrupt = errors.New("wal: corrupt log")

// Kind tags a log record.
type Kind string

// Record kinds.
const (
	// KindCheckout opens a journal: the replica origin snapshot and its
	// position in the base history.
	KindCheckout Kind = "checkout"
	// KindBegin carries a transaction's full wire-format code and marks
	// its start.
	KindBegin Kind = "begin"
	// KindRead records one externally read item and the value observed.
	KindRead Kind = "read"
	// KindWrite records one updated item with its before- and after-image.
	KindWrite Kind = "write"
	// KindCommit seals a transaction; transactions without a commit are
	// discarded at replay (crash semantics).
	KindCommit Kind = "commit"
	// KindWindow marks a base-tier time-window advance (base journals
	// only): the new window id and its origin snapshot.
	KindWindow Kind = "window"
)

// Record is one JSON line of the journal.
type Record struct {
	Seq  int64  `json:"seq"`
	Kind Kind   `json:"kind"`
	TxID string `json:"tx,omitempty"`

	// KindBegin
	Txn json.RawMessage `json:"txn,omitempty"`

	// KindRead / KindWrite
	Item   model.Item  `json:"item,omitempty"`
	Value  model.Value `json:"value,omitempty"`
	Before model.Value `json:"before,omitempty"`
	After  model.Value `json:"after,omitempty"`
	// Delta is set on a KindWrite record when the statement was a pure
	// commutative increment of Item (After == Before + Delta and the
	// transaction never read Item outside the increment itself). Replay
	// re-derives the classification and cross-checks it, so the merge layer
	// can trust recovered histories to fold deltas exactly as live ones.
	// A pointer distinguishes "not a delta write" from a zero increment.
	Delta *model.Value `json:"delta,omitempty"`

	// KindCheckout
	WindowID int                        `json:"window,omitempty"`
	Pos      int                        `json:"pos,omitempty"`
	Origin   map[model.Item]model.Value `json:"origin,omitempty"`
}

// Syncer is the stable-media seam: a journal sink that can force buffered
// bytes to durable storage. *os.File satisfies it, as does the segmented
// tail of internal/store. Sinks without it (bytes.Buffer in tests, network
// pipes) are treated as instantaneously durable.
type Syncer interface {
	Sync() error
}

// Writer appends records to a journal stream.
type Writer struct {
	enc  *json.Encoder
	sink io.Writer
	seq  int64
}

// NewWriter starts a journal on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{enc: json.NewEncoder(w), sink: w}
}

// Sync forces every appended record to stable media when the sink supports
// it (Syncer) and is a no-op otherwise. Commit paths must call it before
// acknowledging: a record that reached only the sink's buffer cache can
// vanish on power loss.
func (lw *Writer) Sync() error {
	if s, ok := lw.sink.(Syncer); ok {
		if err := s.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	return nil
}

// ResetSeq restarts sequence numbering so the next record is numbered
// seq 1. The segmented base log uses it at checkpoint rotation: each tail
// segment is an independent journal stream whose records Scan verifies as
// contiguous from 1.
func (lw *Writer) ResetSeq() { lw.seq = 0 }

// SetSeq makes the next record carry sequence number seq+1 — reattaching a
// writer to a recovered journal continues its numbering.
func (lw *Writer) SetSeq(seq int64) { lw.seq = seq }

func (lw *Writer) append(r Record) error {
	lw.seq++
	r.Seq = lw.seq
	if err := lw.enc.Encode(r); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	return nil
}

// Checkout logs the replica origin the tentative history starts from.
func (lw *Writer) Checkout(windowID, pos int, origin model.State) error {
	return lw.append(Record{
		Kind:     KindCheckout,
		WindowID: windowID,
		Pos:      pos,
		Origin:   origin.Clone(),
	})
}

// Window logs a base-tier window advance with the new window's origin.
func (lw *Writer) Window(windowID int, origin model.State) error {
	return lw.append(Record{
		Kind:     KindWindow,
		WindowID: windowID,
		Origin:   origin.Clone(),
	})
}

// LogTxn journals one executed tentative transaction: begin (with code),
// every external read value, every write image, commit.
func (lw *Writer) LogTxn(t *tx.Transaction, eff *tx.Effect) error {
	code, err := tx.MarshalTransaction(t)
	if err != nil {
		return fmt.Errorf("wal: encode %s: %w", t.ID, err)
	}
	if err := lw.append(Record{Kind: KindBegin, TxID: t.ID, Txn: code}); err != nil {
		return err
	}
	for _, it := range sortedItems(eff.ReadValues) {
		if err := lw.append(Record{
			Kind: KindRead, TxID: t.ID, Item: it, Value: eff.ReadValues[it],
		}); err != nil {
			return err
		}
	}
	pure := eff.DeltaPure()
	for _, it := range sortedItems(eff.Writes) {
		rec := Record{
			Kind: KindWrite, TxID: t.ID, Item: it,
			Before: eff.Before[it], After: eff.Writes[it],
		}
		if pure.Has(it) {
			d := eff.Deltas[it]
			rec.Delta = &d
		}
		if err := lw.append(rec); err != nil {
			return err
		}
	}
	return lw.append(Record{Kind: KindCommit, TxID: t.ID})
}

func sortedItems[V any](m map[model.Item]V) []model.Item {
	out := make([]model.Item, 0, len(m))
	for it := range m {
		out = append(out, it)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ScanMode selects how Scan treats journal damage.
type ScanMode int

// Scan modes.
const (
	// Strict accepts exactly one kind of damage: a torn final line (the
	// crash interrupted the last append). Any earlier damage — a malformed
	// interior line, a sequence-number break from a dropped or duplicated
	// line — is ErrCorrupt: the journal no longer represents the history
	// that was acknowledged, and replaying a silently truncated prefix
	// would drop committed work.
	Strict ScanMode = iota
	// Salvage never fails on damage: it decodes the longest valid prefix,
	// stops at the first damaged line, and reports where the journal tears
	// and how much it discarded. Recovery must not run on a salvaged
	// prefix (acknowledged work past the tear is lost); the mode exists
	// for forensics — walinspect -salvage dumps what a damaged log still
	// proves.
	Salvage
)

// ScanResult is a decoded journal stream plus the damage report.
type ScanResult struct {
	// Records is the decoded prefix.
	Records []Record
	// Torn reports whether the stream ended in (Strict) or was cut at
	// (Salvage) a damaged line.
	Torn bool
	// TornLine is the 1-based line number of the tear (0 when !Torn).
	TornLine int
	// TornOffset is the byte offset at which the torn line starts.
	TornOffset int64
	// TornReason describes the decode or sequence error at the tear.
	TornReason string
	// DiscardedLines counts non-empty lines after the tear that Salvage
	// skipped (always 0 in Strict mode, which fails instead).
	DiscardedLines int
}

// Scan decodes a journal stream under the given mode. Beyond per-line JSON
// validity it verifies the append-only contract: record sequence numbers
// are contiguous from 1, so dropped and duplicated lines are detected even
// when every surviving line parses cleanly.
func Scan(r io.Reader, mode ScanMode) (*ScanResult, error) {
	res := &ScanResult{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		line   int
		offset int64
	)
	tearAt := func(reason string) {
		res.Torn = true
		res.TornLine = line
		res.TornOffset = offset
		res.TornReason = reason
	}
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if res.Torn {
			// Past the first damaged line. Strict tolerates damage only on
			// the final line, so any further content is corruption, not a
			// tear; Salvage counts what it is discarding.
			if len(raw) == 0 {
				offset += int64(len(raw)) + 1
				continue
			}
			if mode == Strict {
				return nil, fmt.Errorf("wal: line %d: %s (damage before end of journal): %w",
					res.TornLine, res.TornReason, ErrCorrupt)
			}
			res.DiscardedLines++
			offset += int64(len(raw)) + 1
			continue
		}
		if len(raw) == 0 {
			offset += int64(len(raw)) + 1
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			tearAt(err.Error())
			offset += int64(len(raw)) + 1
			continue
		}
		if want := int64(len(res.Records)) + 1; rec.Seq != want {
			// A crash can only tear the tail; a sequence break means a
			// whole line vanished or repeated, which no crash produces.
			reason := fmt.Sprintf("sequence break: record %d, want %d", rec.Seq, want)
			if mode == Salvage {
				tearAt(reason)
				res.DiscardedLines++
				offset += int64(len(raw)) + 1
				continue
			}
			return nil, fmt.Errorf("wal: line %d: %s: %w", line, reason, ErrCorrupt)
		}
		res.Records = append(res.Records, rec)
		offset += int64(len(raw)) + 1
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("wal: scan: %w", err)
	}
	return res, nil
}

// ReadAll decodes every record of a journal stream in Strict mode: a torn
// final line (crash damage) is dropped; any damage before the end of the
// stream is ErrCorrupt. Callers that need the tear report use Scan.
func ReadAll(r io.Reader) ([]Record, error) {
	res, err := Scan(r, Strict)
	if err != nil {
		return nil, err
	}
	return res.Records, nil
}

// Replayed is a tentative run reconstructed from a journal.
type Replayed struct {
	WindowID  int
	Pos       int
	Origin    model.State
	Augmented *history.Augmented
	// Dropped counts trailing uncommitted transactions discarded at
	// replay (crash semantics).
	Dropped int
}

// Replay rebuilds the tentative history from journal records: it decodes
// the checkout origin and every committed transaction's code, re-executes
// the history serially and cross-checks each transaction's logged read
// values and write images against the replayed effects. A mismatch means
// the log and the code disagree — the log is corrupt.
func Replay(records []Record) (*Replayed, error) {
	if len(records) == 0 || records[0].Kind != KindCheckout {
		return nil, fmt.Errorf("%w: journal must start with a checkout record", ErrCorrupt)
	}
	rep := &Replayed{
		WindowID: records[0].WindowID,
		Pos:      records[0].Pos,
		Origin:   model.StateOf(records[0].Origin),
	}

	type pending struct {
		t       *tx.Transaction
		reads   map[model.Item]model.Value
		writes  map[model.Item]model.Value
		befores map[model.Item]model.Value
		deltas  map[model.Item]model.Value
	}
	var (
		cur       *pending
		committed []*pending
	)
	for _, rec := range records[1:] {
		switch rec.Kind {
		case KindBegin:
			if cur != nil {
				// begin without commit: the previous transaction tore
				return nil, fmt.Errorf("%w: begin %s while %s uncommitted",
					ErrCorrupt, rec.TxID, cur.t.ID)
			}
			t, err := tx.UnmarshalTransaction(rec.Txn)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			cur = &pending{
				t:       t,
				reads:   make(map[model.Item]model.Value),
				writes:  make(map[model.Item]model.Value),
				befores: make(map[model.Item]model.Value),
				deltas:  make(map[model.Item]model.Value),
			}
		case KindRead:
			if cur == nil || cur.t.ID != rec.TxID {
				return nil, fmt.Errorf("%w: stray read record for %s", ErrCorrupt, rec.TxID)
			}
			cur.reads[rec.Item] = rec.Value
		case KindWrite:
			if cur == nil || cur.t.ID != rec.TxID {
				return nil, fmt.Errorf("%w: stray write record for %s", ErrCorrupt, rec.TxID)
			}
			cur.writes[rec.Item] = rec.After
			cur.befores[rec.Item] = rec.Before
			if rec.Delta != nil {
				cur.deltas[rec.Item] = *rec.Delta
			}
		case KindCommit:
			if cur == nil || cur.t.ID != rec.TxID {
				return nil, fmt.Errorf("%w: stray commit record for %s", ErrCorrupt, rec.TxID)
			}
			committed = append(committed, cur)
			cur = nil
		case KindCheckout:
			return nil, fmt.Errorf("%w: duplicate checkout record", ErrCorrupt)
		default:
			return nil, fmt.Errorf("%w: unknown record kind %q", ErrCorrupt, rec.Kind)
		}
	}
	if cur != nil {
		rep.Dropped++ // trailing uncommitted transaction: crash victim
	}

	h := &history.History{}
	for _, p := range committed {
		h.Append(p.t)
	}
	aug, err := history.Run(h, rep.Origin)
	if err != nil {
		return nil, fmt.Errorf("%w: replay execution: %v", ErrCorrupt, err)
	}
	// Integrity check: replayed effects must reproduce the journal.
	for i, p := range committed {
		eff := aug.Effects[i]
		for it, v := range p.reads {
			if got, ok := eff.ReadValues[it]; !ok || got != v {
				return nil, fmt.Errorf("%w: %s read %s: logged %d, replayed %d",
					ErrCorrupt, p.t.ID, it, v, got)
			}
		}
		if len(p.writes) != len(eff.Writes) {
			return nil, fmt.Errorf("%w: %s wrote %d items, journal has %d",
				ErrCorrupt, p.t.ID, len(eff.Writes), len(p.writes))
		}
		for it, v := range p.writes {
			if got := eff.Writes[it]; got != v {
				return nil, fmt.Errorf("%w: %s wrote %s: logged %d, replayed %d",
					ErrCorrupt, p.t.ID, it, v, got)
			}
		}
		// Before-images feed the undo approach (prune.ByUndo restores
		// them), so a corrupt before-image is as dangerous as a corrupt
		// after-image: verify both against the replayed effects.
		for it, v := range p.befores {
			if got := eff.Before[it]; got != v {
				return nil, fmt.Errorf("%w: %s before-image %s: logged %d, replayed %d",
					ErrCorrupt, p.t.ID, it, v, got)
			}
		}
		// Delta annotations drive edge elision and associative folding after
		// recovery, so they must agree with the replayed classification in
		// both directions: a spurious delta could merge a non-commutative
		// write without an edge, a dropped one merely loses the optimization
		// but still signals a log/code disagreement.
		pure := eff.DeltaPure()
		if len(p.deltas) != len(pure) {
			return nil, fmt.Errorf("%w: %s logged %d delta writes, replay classified %d",
				ErrCorrupt, p.t.ID, len(p.deltas), len(pure))
		}
		for it, d := range p.deltas {
			if !pure.Has(it) {
				return nil, fmt.Errorf("%w: %s delta on %s: replay classified a value write",
					ErrCorrupt, p.t.ID, it)
			}
			if got := eff.Deltas[it]; got != d {
				return nil, fmt.Errorf("%w: %s delta %s: logged %d, replayed %d",
					ErrCorrupt, p.t.ID, it, d, got)
			}
		}
	}
	rep.Augmented = aug
	return rep, nil
}
