// Package wal implements the mobile node's write-ahead log. The paper's
// protocol is log-driven end to end: the precedence graph "can be built by
// parsing the log for Hm and the log for Hb ... if read operations (or read
// sets) are recorded in the log" (Section 7.1), the undo approach restores
// logged before-images (Section 6.2), and non-canned systems "record the
// codes of transactions when they are executed" (Section 5.1). This package
// supplies exactly that log: an append-only JSON-lines journal carrying the
// checkout origin, full transaction code, read values and write images —
// enough to reconstruct the tentative history (with effects) after a crash
// and to verify the replayed execution against the logged one.
package wal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"tiermerge/internal/history"
	"tiermerge/internal/model"
	"tiermerge/internal/tx"
)

// ErrCorrupt is wrapped by replay errors caused by a log whose records
// contradict re-execution (torn writes, bit rot, or a mismatched origin).
var ErrCorrupt = errors.New("wal: corrupt log")

// Kind tags a log record.
type Kind string

// Record kinds.
const (
	// KindCheckout opens a journal: the replica origin snapshot and its
	// position in the base history.
	KindCheckout Kind = "checkout"
	// KindBegin carries a transaction's full wire-format code and marks
	// its start.
	KindBegin Kind = "begin"
	// KindRead records one externally read item and the value observed.
	KindRead Kind = "read"
	// KindWrite records one updated item with its before- and after-image.
	KindWrite Kind = "write"
	// KindCommit seals a transaction; transactions without a commit are
	// discarded at replay (crash semantics).
	KindCommit Kind = "commit"
	// KindWindow marks a base-tier time-window advance (base journals
	// only): the new window id and its origin snapshot.
	KindWindow Kind = "window"
)

// Record is one JSON line of the journal.
type Record struct {
	Seq  int64  `json:"seq"`
	Kind Kind   `json:"kind"`
	TxID string `json:"tx,omitempty"`

	// KindBegin
	Txn json.RawMessage `json:"txn,omitempty"`

	// KindRead / KindWrite
	Item   model.Item  `json:"item,omitempty"`
	Value  model.Value `json:"value,omitempty"`
	Before model.Value `json:"before,omitempty"`
	After  model.Value `json:"after,omitempty"`

	// KindCheckout
	WindowID int                        `json:"window,omitempty"`
	Pos      int                        `json:"pos,omitempty"`
	Origin   map[model.Item]model.Value `json:"origin,omitempty"`
}

// Writer appends records to a journal stream.
type Writer struct {
	enc *json.Encoder
	seq int64
}

// NewWriter starts a journal on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{enc: json.NewEncoder(w)}
}

func (lw *Writer) append(r Record) error {
	lw.seq++
	r.Seq = lw.seq
	if err := lw.enc.Encode(r); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	return nil
}

// Checkout logs the replica origin the tentative history starts from.
func (lw *Writer) Checkout(windowID, pos int, origin model.State) error {
	return lw.append(Record{
		Kind:     KindCheckout,
		WindowID: windowID,
		Pos:      pos,
		Origin:   origin.Clone(),
	})
}

// Window logs a base-tier window advance with the new window's origin.
func (lw *Writer) Window(windowID int, origin model.State) error {
	return lw.append(Record{
		Kind:     KindWindow,
		WindowID: windowID,
		Origin:   origin.Clone(),
	})
}

// LogTxn journals one executed tentative transaction: begin (with code),
// every external read value, every write image, commit.
func (lw *Writer) LogTxn(t *tx.Transaction, eff *tx.Effect) error {
	code, err := tx.MarshalTransaction(t)
	if err != nil {
		return fmt.Errorf("wal: encode %s: %w", t.ID, err)
	}
	if err := lw.append(Record{Kind: KindBegin, TxID: t.ID, Txn: code}); err != nil {
		return err
	}
	for _, it := range sortedItems(eff.ReadValues) {
		if err := lw.append(Record{
			Kind: KindRead, TxID: t.ID, Item: it, Value: eff.ReadValues[it],
		}); err != nil {
			return err
		}
	}
	for _, it := range sortedItems(eff.Writes) {
		if err := lw.append(Record{
			Kind: KindWrite, TxID: t.ID, Item: it,
			Before: eff.Before[it], After: eff.Writes[it],
		}); err != nil {
			return err
		}
	}
	return lw.append(Record{Kind: KindCommit, TxID: t.ID})
}

func sortedItems[V any](m map[model.Item]V) []model.Item {
	out := make([]model.Item, 0, len(m))
	for it := range m {
		out = append(out, it)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ReadAll decodes every record of a journal stream.
func ReadAll(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			// A torn final line is expected crash damage: stop there.
			if line > 0 {
				break
			}
			return nil, fmt.Errorf("wal: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("wal: scan: %w", err)
	}
	return out, nil
}

// Replayed is a tentative run reconstructed from a journal.
type Replayed struct {
	WindowID  int
	Pos       int
	Origin    model.State
	Augmented *history.Augmented
	// Dropped counts trailing uncommitted transactions discarded at
	// replay (crash semantics).
	Dropped int
}

// Replay rebuilds the tentative history from journal records: it decodes
// the checkout origin and every committed transaction's code, re-executes
// the history serially and cross-checks each transaction's logged read
// values and write images against the replayed effects. A mismatch means
// the log and the code disagree — the log is corrupt.
func Replay(records []Record) (*Replayed, error) {
	if len(records) == 0 || records[0].Kind != KindCheckout {
		return nil, fmt.Errorf("%w: journal must start with a checkout record", ErrCorrupt)
	}
	rep := &Replayed{
		WindowID: records[0].WindowID,
		Pos:      records[0].Pos,
		Origin:   model.StateOf(records[0].Origin),
	}

	type pending struct {
		t      *tx.Transaction
		reads  map[model.Item]model.Value
		writes map[model.Item]model.Value
	}
	var (
		cur       *pending
		committed []*pending
	)
	for _, rec := range records[1:] {
		switch rec.Kind {
		case KindBegin:
			if cur != nil {
				// begin without commit: the previous transaction tore
				return nil, fmt.Errorf("%w: begin %s while %s uncommitted",
					ErrCorrupt, rec.TxID, cur.t.ID)
			}
			t, err := tx.UnmarshalTransaction(rec.Txn)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			cur = &pending{
				t:      t,
				reads:  make(map[model.Item]model.Value),
				writes: make(map[model.Item]model.Value),
			}
		case KindRead:
			if cur == nil || cur.t.ID != rec.TxID {
				return nil, fmt.Errorf("%w: stray read record for %s", ErrCorrupt, rec.TxID)
			}
			cur.reads[rec.Item] = rec.Value
		case KindWrite:
			if cur == nil || cur.t.ID != rec.TxID {
				return nil, fmt.Errorf("%w: stray write record for %s", ErrCorrupt, rec.TxID)
			}
			cur.writes[rec.Item] = rec.After
		case KindCommit:
			if cur == nil || cur.t.ID != rec.TxID {
				return nil, fmt.Errorf("%w: stray commit record for %s", ErrCorrupt, rec.TxID)
			}
			committed = append(committed, cur)
			cur = nil
		case KindCheckout:
			return nil, fmt.Errorf("%w: duplicate checkout record", ErrCorrupt)
		default:
			return nil, fmt.Errorf("%w: unknown record kind %q", ErrCorrupt, rec.Kind)
		}
	}
	if cur != nil {
		rep.Dropped++ // trailing uncommitted transaction: crash victim
	}

	h := &history.History{}
	for _, p := range committed {
		h.Append(p.t)
	}
	aug, err := history.Run(h, rep.Origin)
	if err != nil {
		return nil, fmt.Errorf("%w: replay execution: %v", ErrCorrupt, err)
	}
	// Integrity check: replayed effects must reproduce the journal.
	for i, p := range committed {
		eff := aug.Effects[i]
		for it, v := range p.reads {
			if got, ok := eff.ReadValues[it]; !ok || got != v {
				return nil, fmt.Errorf("%w: %s read %s: logged %d, replayed %d",
					ErrCorrupt, p.t.ID, it, v, got)
			}
		}
		if len(p.writes) != len(eff.Writes) {
			return nil, fmt.Errorf("%w: %s wrote %d items, journal has %d",
				ErrCorrupt, p.t.ID, len(eff.Writes), len(p.writes))
		}
		for it, v := range p.writes {
			if got := eff.Writes[it]; got != v {
				return nil, fmt.Errorf("%w: %s wrote %s: logged %d, replayed %d",
					ErrCorrupt, p.t.ID, it, v, got)
			}
		}
	}
	rep.Augmented = aug
	return rep, nil
}
