// Package recovery applies the rewriting machinery to the use case it grew
// out of: excising bad transactions from an already-committed history. The
// paper derives its algorithms from the authors' malicious-transaction
// recovery work ([AJL98], [LAJ99]) and notes the methods "can also be used
// to improve the performance of optimistic replication protocols in
// distributed database systems" — this package is that standalone mode:
// given a history and a set of transactions later found to be bad (an
// intrusion report, a buggy release's writes, an operator error), rewrite
// the history to move the bad transactions and the unsalvageable affected
// work to the end, prune, and land the database on the repaired state
// without re-executing the surviving transactions.
package recovery

import (
	"errors"
	"fmt"

	"tiermerge/internal/history"
	"tiermerge/internal/model"
	"tiermerge/internal/prune"
	"tiermerge/internal/rewrite"
	"tiermerge/internal/tx"
)

// ErrUnknownTransaction is returned when a bad ID does not occur in the
// history.
var ErrUnknownTransaction = errors.New("recovery: unknown transaction id")

// Options configures an excision.
type Options struct {
	// Detector decides can-precede (default rewrite.StaticDetector{}).
	Detector rewrite.PrecedeDetector
	// CanFollowOnly restricts the rewrite to Algorithm 1 — the mode for
	// systems whose transaction code is unavailable, where only
	// readset/writeset syntax can be trusted (Section 5.1's last case).
	CanFollowOnly bool
	// Verify re-executes the repaired history and compares (tests/debug).
	Verify bool
}

// Report is the outcome of an excision.
type Report struct {
	// Result is the underlying rewrite.
	Result *rewrite.Result
	// SavedIDs are the surviving transactions, in repaired order.
	SavedIDs []string
	// AffectedIDs are the reads-from closure of the bad set.
	AffectedIDs []string
	// ResubmitIDs are the non-bad transactions whose work was lost (the
	// affected transactions that could not be saved); users decide whether
	// to resubmit them.
	ResubmitIDs []string
	// RepairedState is the database state with the bad transactions' (and
	// lost affected transactions') effects removed.
	RepairedState model.State
	// PruneMethod records how the state was repaired.
	PruneMethod string
}

// Excise removes the transactions named in badIDs (and whatever affected
// work cannot be saved) from the committed history a, returning the
// repaired state computed from the current (final) state — not by
// re-execution.
func Excise(a *history.Augmented, badIDs []string, opts Options) (*Report, error) {
	if opts.Detector == nil {
		opts.Detector = rewrite.StaticDetector{}
	}
	bad := make(map[int]bool, len(badIDs))
	for _, id := range badIDs {
		pos := a.H.IndexOf(id)
		if pos < 0 {
			return nil, fmt.Errorf("%w: %s", ErrUnknownTransaction, id)
		}
		bad[pos] = true
	}

	var (
		res *rewrite.Result
		err error
	)
	if opts.CanFollowOnly {
		res, err = rewrite.Algorithm1(a, bad)
	} else {
		res, err = rewrite.Algorithm2(a, bad, opts.Detector)
	}
	if err != nil {
		return nil, fmt.Errorf("recovery: rewrite: %w", err)
	}

	state, method, err := pruneAuto(res, a.Final())
	if err != nil {
		return nil, fmt.Errorf("recovery: prune: %w", err)
	}

	rep := &Report{
		Result:        res,
		SavedIDs:      res.SavedIDs(),
		RepairedState: state,
		PruneMethod:   method,
	}
	for pos := range res.Affected {
		rep.AffectedIDs = append(rep.AffectedIDs, a.H.Txn(pos).ID)
	}
	sortStrings(rep.AffectedIDs)
	savedSet := res.SavedSet()
	for i := res.PrefixLen; i < res.Rewritten.Len(); i++ {
		id := res.Rewritten.Txn(i).ID
		if !bad[res.OrigPos[i]] && !savedSet[id] {
			rep.ResubmitIDs = append(rep.ResubmitIDs, id)
		}
	}
	sortStrings(rep.ResubmitIDs)

	if opts.Verify {
		oracle, err := history.Run(res.Repaired(), a.States[0])
		if err != nil {
			return nil, fmt.Errorf("recovery: verify: %w", err)
		}
		if !oracle.Final().Equal(state) {
			return nil, fmt.Errorf("recovery: verify: pruned %s != re-executed %s",
				state, oracle.Final())
		}
	}
	return rep, nil
}

// pruneAuto compensates where possible and falls back to undo.
func pruneAuto(res *rewrite.Result, final model.State) (model.State, string, error) {
	s, _, err := prune.ByCompensation(res, final)
	if err == nil {
		return s, "compensation", nil
	}
	var notInv *tx.NotInvertibleError
	if !errors.As(err, &notInv) {
		return nil, "", err
	}
	s, _, err = prune.ByUndo(res, final)
	return s, "undo", err
}

// sortStrings is a tiny insertion sort; ID lists are short.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
