package recovery

import (
	"errors"
	"reflect"
	"testing"

	"tiermerge/internal/history"
	"tiermerge/internal/model"
	"tiermerge/internal/papertest"
	"tiermerge/internal/tx"
	"tiermerge/internal/workload"
)

// TestExciseH4 excises B1 from the paper's H4 and recovers the G2 G3
// state without re-execution.
func TestExciseH4(t *testing.T) {
	h := papertest.NewH4()
	a, err := history.Run(history.New(h.Txns()...), h.Origin)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Excise(a, []string{"B1"}, Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.SavedIDs, []string{"G2", "G3"}) {
		t.Errorf("saved = %v, want [G2 G3]", rep.SavedIDs)
	}
	if len(rep.ResubmitIDs) != 0 {
		t.Errorf("resubmit = %v, want none (G3 saved by can-precede)", rep.ResubmitIDs)
	}
	want := model.StateOf(map[model.Item]model.Value{"u": 10, "x": 10, "z": 30})
	if !rep.RepairedState.Equal(want) {
		t.Errorf("repaired = %s, want %s", rep.RepairedState, want)
	}
}

// TestExciseCanFollowOnly restricts to Algorithm 1: G3 is lost and flagged
// for resubmission.
func TestExciseCanFollowOnly(t *testing.T) {
	h := papertest.NewH4()
	a, err := history.Run(history.New(h.Txns()...), h.Origin)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Excise(a, []string{"B1"}, Options{CanFollowOnly: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.SavedIDs, []string{"G2"}) {
		t.Errorf("saved = %v, want [G2]", rep.SavedIDs)
	}
	if !reflect.DeepEqual(rep.ResubmitIDs, []string{"G3"}) {
		t.Errorf("resubmit = %v, want [G3]", rep.ResubmitIDs)
	}
	if !reflect.DeepEqual(rep.AffectedIDs, []string{"G3"}) {
		t.Errorf("affected = %v, want [G3]", rep.AffectedIDs)
	}
}

// TestExciseUnknownID rejects bad IDs not in the history.
func TestExciseUnknownID(t *testing.T) {
	h := papertest.NewH4()
	a, err := history.Run(history.New(h.Txns()...), h.Origin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Excise(a, []string{"nope"}, Options{}); !errors.Is(err, ErrUnknownTransaction) {
		t.Errorf("got %v, want ErrUnknownTransaction", err)
	}
}

// TestExciseRandom property-checks excision on random workloads: the
// repaired state always equals re-executing the saved transactions, and
// bad transactions never survive.
func TestExciseRandom(t *testing.T) {
	gen := workload.NewGenerator(workload.Config{Seed: 501, Items: 8, PCommutative: 0.7})
	origin := gen.OriginState()
	for trial := 0; trial < 150; trial++ {
		a, err := gen.RunHistory(tx.Tentative, 10, origin)
		if err != nil {
			t.Fatal(err)
		}
		badPos := gen.RandomBadSet(10, 0.2)
		var badIDs []string
		for pos := range badPos {
			badIDs = append(badIDs, a.H.Txn(pos).ID)
		}
		rep, err := Excise(a, badIDs, Options{Verify: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		saved := make(map[string]bool)
		for _, id := range rep.SavedIDs {
			saved[id] = true
		}
		for _, id := range badIDs {
			if saved[id] {
				t.Fatalf("trial %d: bad transaction %s survived", trial, id)
			}
		}
		// saved ∪ resubmit ∪ bad covers the history.
		if len(rep.SavedIDs)+len(rep.ResubmitIDs)+len(badIDs) != a.H.Len() {
			t.Fatalf("trial %d: partition broken: %d+%d+%d != %d",
				trial, len(rep.SavedIDs), len(rep.ResubmitIDs), len(badIDs), a.H.Len())
		}
	}
}

// TestExciseEverything removes all transactions: repaired state is the
// origin.
func TestExciseEverything(t *testing.T) {
	h := papertest.NewH4()
	a, err := history.Run(history.New(h.Txns()...), h.Origin)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Excise(a, []string{"B1", "G2", "G3"}, Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SavedIDs) != 0 {
		t.Errorf("saved = %v", rep.SavedIDs)
	}
	if !rep.RepairedState.Equal(h.Origin) {
		t.Errorf("repaired = %s, want origin %s", rep.RepairedState, h.Origin)
	}
}
