package graph

import (
	"sort"
	"testing"
)

func coverWeight(cover []int, w map[int]int) int {
	total := 0
	for _, v := range cover {
		total += w[v]
	}
	return total
}

func isCover(edges [][2]int, cover []int) bool {
	in := make(map[int]bool, len(cover))
	for _, v := range cover {
		in[v] = true
	}
	for _, e := range edges {
		if !in[e[0]] && !in[e[1]] {
			return false
		}
	}
	return true
}

func TestMinVertexCoverSmall(t *testing.T) {
	unit := func(vs ...int) map[int]int {
		m := make(map[int]int)
		for _, v := range vs {
			m[v] = 1
		}
		return m
	}
	tests := []struct {
		name   string
		edges  [][2]int
		weight map[int]int
		want   int // optimal total weight
	}{
		{"single edge", [][2]int{{1, 2}}, unit(1, 2), 1},
		{"path of three", [][2]int{{1, 2}, {2, 3}}, unit(1, 2, 3), 1},
		{"triangle", [][2]int{{1, 2}, {2, 3}, {1, 3}}, unit(1, 2, 3), 2},
		{"star", [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}}, unit(0, 1, 2, 3, 4), 1},
		{"weighted edge", [][2]int{{1, 2}}, map[int]int{1: 10, 2: 3}, 3},
		{"weighted star beats center",
			[][2]int{{0, 1}, {0, 2}},
			map[int]int{0: 100, 1: 1, 2: 1}, 2},
		{"empty", nil, unit(), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := minVertexCover(tt.edges, tt.weight, 20)
			if !isCover(tt.edges, got) {
				t.Fatalf("not a cover: %v", got)
			}
			if w := coverWeight(got, tt.weight); w != tt.want {
				t.Errorf("cover %v weight %d, want %d", got, w, tt.want)
			}
		})
	}
}

// TestMinVertexCoverExactVsBrute validates the branch-and-bound against
// brute-force subset enumeration on fuzzed graphs.
func TestMinVertexCoverExactVsBrute(t *testing.T) {
	next := uint64(31337)
	rnd := func(n int) int {
		next = next*6364136223846793005 + 1442695040888963407
		return int(next>>33) % n
	}
	for trial := 0; trial < 200; trial++ {
		nV := 2 + rnd(7)
		nE := 1 + rnd(10)
		var edges [][2]int
		weight := make(map[int]int)
		for i := 0; i < nE; i++ {
			u, v := rnd(nV), rnd(nV)
			if u == v {
				continue
			}
			edges = append(edges, [2]int{u, v})
			weight[u] = 1 + u%3
			weight[v] = 1 + v%3
		}
		got := minVertexCover(edges, weight, 20)
		if !isCover(edges, got) {
			t.Fatalf("trial %d: not a cover", trial)
		}
		// Brute force optimum.
		verts := make([]int, 0, len(weight))
		for v := range weight {
			verts = append(verts, v)
		}
		sort.Ints(verts)
		best := 1 << 30
		for mask := 0; mask < 1<<len(verts); mask++ {
			var c []int
			w := 0
			for i, v := range verts {
				if mask&(1<<i) != 0 {
					c = append(c, v)
					w += weight[v]
				}
			}
			if w < best && isCover(edges, c) {
				best = w
			}
		}
		if w := coverWeight(got, weight); w != best {
			t.Fatalf("trial %d: cover weight %d, optimum %d (edges %v)", trial, w, best, edges)
		}
	}
}

// TestGreedyFallbackIsCover checks the over-limit path still covers.
func TestGreedyFallbackIsCover(t *testing.T) {
	var edges [][2]int
	weight := make(map[int]int)
	for i := 0; i < 40; i++ {
		edges = append(edges, [2]int{i, i + 1})
		weight[i], weight[i+1] = 1, 1
	}
	got := minVertexCover(edges, weight, 10) // force greedy
	if !isCover(edges, got) {
		t.Fatal("greedy fallback produced a non-cover")
	}
}
