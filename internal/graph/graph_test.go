package graph

import (
	"sort"
	"strings"
	"testing"

	"tiermerge/internal/history"
	"tiermerge/internal/model"
	"tiermerge/internal/papertest"
	"tiermerge/internal/tx"
)

// example1Graph executes the paper's Example 1 histories and builds
// G(Hm, Hb).
func example1Graph(t *testing.T) (*Graph, *history.Augmented, *history.Augmented) {
	t.Helper()
	e := papertest.NewExample1()
	am, err := history.Run(history.New(e.Mobile()...), e.Origin)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := history.Run(history.New(e.BaseTxns()...), e.Origin)
	if err != nil {
		t.Fatal(err)
	}
	return BuildFromHistories(am, ab), am, ab
}

// TestExample1Footprints pins the executable profiles to the paper's
// declared read/write sets.
func TestExample1Footprints(t *testing.T) {
	e := papertest.NewExample1()
	am, err := history.Run(history.New(e.Mobile()...), e.Origin)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := history.Run(history.New(e.BaseTxns()...), e.Origin)
	if err != nil {
		t.Fatal(err)
	}
	wantR := map[string][]model.Item{
		"Tm1": {"d1", "d2"},
		"Tm2": {"d2", "d3"},
		"Tm3": {"d4", "d5", "d6"},
		"Tm4": {"d6"},
		"Tb1": {"d5"},
		"Tb2": {"d1", "d5"},
	}
	wantW := map[string][]model.Item{
		"Tm1": {"d1", "d2"},
		"Tm2": {"d3", "d4", "d5", "d6"},
		"Tm3": {"d4", "d6"},
		"Tm4": {"d6"},
		"Tb1": {"d5"},
		"Tb2": {},
	}
	check := func(a *history.Augmented) {
		for i := 0; i < a.H.Len(); i++ {
			id := a.H.Txn(i).ID
			r, w := a.Effects[i].ReadSet, a.Effects[i].WriteSet
			if len(r) != len(wantR[id]) {
				t.Errorf("%s read set = %v, want %v", id, r, wantR[id])
			}
			for _, it := range wantR[id] {
				if !r.Has(it) {
					t.Errorf("%s read set missing %s", id, it)
				}
			}
			if len(w) != len(wantW[id]) {
				t.Errorf("%s write set = %v, want %v", id, w, wantW[id])
			}
			for _, it := range wantW[id] {
				if !w.Has(it) {
					t.Errorf("%s write set missing %s", id, it)
				}
			}
		}
	}
	check(am)
	check(ab)
}

// TestExample1Figure1 checks the precedence graph against Figure 1: the
// cycle Tb2 -> Tm1 -> Tm2 -> Tm3 -> Tb1 -> Tb2 must be present, and the
// graph must be cyclic.
func TestExample1Figure1(t *testing.T) {
	g, _, _ := example1Graph(t)
	wantEdges := [][2]string{
		{"Tb2", "Tm1"}, // Tb2 read d1, Tm1 updated it
		{"Tm1", "Tm2"}, // conflict on d2, Hm order
		{"Tm2", "Tm3"}, // conflicts on d4/d5/d6, Hm order
		{"Tm3", "Tb1"}, // Tm3 read d5, Tb1 updated it
		{"Tb1", "Tb2"}, // conflict on d5, Hb order
		{"Tm2", "Tm4"}, // conflict on d6
		{"Tm3", "Tm4"}, // conflict on d6
	}
	for _, e := range wantEdges {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %s -> %s", e[0], e[1])
		}
	}
	// Edges that must NOT exist (would change the example's semantics).
	for _, e := range [][2]string{
		{"Tm1", "Tb2"}, {"Tb1", "Tm3"}, {"Tm4", "Tm3"}, {"Tb2", "Tb1"},
	} {
		if g.HasEdge(e[0], e[1]) {
			t.Errorf("unexpected edge %s -> %s", e[0], e[1])
		}
	}
	if g.Acyclic(nil) {
		t.Fatal("Example 1 graph must be cyclic")
	}
	if c := g.FindCycle(nil); len(c) < 2 {
		t.Errorf("FindCycle = %v, want a cycle", c)
	}
}

// TestExample1BackOut checks that the strategies choose B = {Tm3}, the
// paper's choice, and that removing it leaves the graph acyclic.
func TestExample1BackOut(t *testing.T) {
	g, _, _ := example1Graph(t)
	for _, s := range []Strategy{GreedyCost{}, TwoCycle{}, Exhaustive{}} {
		b, err := s.ComputeB(g)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(b) != 1 || g.ID(b[0]) != "Tm3" {
			ids := make([]string, len(b))
			for i, v := range b {
				ids[i] = g.ID(v)
			}
			t.Errorf("%s: B = %v, want [Tm3]", s.Name(), ids)
		}
		removed := map[int]bool{}
		for _, v := range b {
			removed[v] = true
		}
		if !g.Acyclic(removed) {
			t.Errorf("%s: graph still cyclic after removing B", s.Name())
		}
	}
}

// TestExample1Costs checks the Davidson back-out costs that make Tm3 the
// cheapest cycle breaker: cost(Tm1)=4, cost(Tm2)=3, cost(Tm3)=2,
// cost(Tm4)=1.
func TestExample1Costs(t *testing.T) {
	g, _, _ := example1Graph(t)
	want := map[string]int{"Tm1": 4, "Tm2": 3, "Tm3": 2, "Tm4": 1}
	for id, w := range want {
		if got := g.Cost(g.VertexByID(id)); got != w {
			t.Errorf("cost(%s) = %d, want %d", id, got, w)
		}
	}
}

func TestAcyclicWhenNoOverlap(t *testing.T) {
	m := []Access{{ID: "Tm1", Kind: tx.Tentative,
		ReadSet: model.NewItemSet("a"), WriteSet: model.NewItemSet("a")}}
	b := []Access{{ID: "Tb1", Kind: tx.Base,
		ReadSet: model.NewItemSet("z"), WriteSet: model.NewItemSet("z")}}
	g := Build(m, b)
	if !g.Acyclic(nil) {
		t.Error("disjoint footprints produced a cycle")
	}
	if len(g.Edges()) != 0 {
		t.Errorf("edges = %v, want none", g.Edges())
	}
}

func TestTwoCycleFromWriteWriteConflict(t *testing.T) {
	// Under no blind writes, a tentative and a base transaction updating
	// the same item always form a 2-cycle; only the tentative side may be
	// backed out.
	m := []Access{{ID: "Tm1", Kind: tx.Tentative,
		ReadSet: model.NewItemSet("x"), WriteSet: model.NewItemSet("x")}}
	b := []Access{{ID: "Tb1", Kind: tx.Base,
		ReadSet: model.NewItemSet("x"), WriteSet: model.NewItemSet("x")}}
	g := Build(m, b)
	pairs := g.TwoCycles()
	if len(pairs) != 1 {
		t.Fatalf("TwoCycles = %v, want one pair", pairs)
	}
	for _, s := range []Strategy{TwoCycle{}, GreedyCost{}, GreedyDegree{}, Exhaustive{}, AllCyclic{}} {
		bset, err := s.ComputeB(g)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(bset) != 1 || g.ID(bset[0]) != "Tm1" {
			t.Errorf("%s: backed out %v, want the tentative Tm1", s.Name(), bset)
		}
	}
}

func TestStrategiesOnAcyclicGraph(t *testing.T) {
	g := Build(nil, nil)
	for _, s := range []Strategy{TwoCycle{}, GreedyCost{}, GreedyDegree{}, Exhaustive{}, AllCyclic{}} {
		b, err := s.ComputeB(g)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(b) != 0 {
			t.Errorf("%s: B = %v on empty graph", s.Name(), b)
		}
	}
}

// TestStrategiesAlwaysBreakAllCycles fuzzes random access patterns and
// checks the fundamental postcondition of every strategy.
func TestStrategiesAlwaysBreakAllCycles(t *testing.T) {
	e := papertest.NewExample1()
	_ = e
	strategies := []Strategy{TwoCycle{}, GreedyCost{}, GreedyDegree{}, Exhaustive{}, AllCyclic{}}
	items := []model.Item{"a", "b", "c", "d", "e"}
	// Deterministic pseudo-random pattern enumeration.
	next := uint64(12345)
	rnd := func(n int) int {
		next = next*6364136223846793005 + 1442695040888963407
		return int(next>>33) % n
	}
	for trial := 0; trial < 200; trial++ {
		mk := func(id string, kind tx.Kind) Access {
			rs, ws := make(model.ItemSet), make(model.ItemSet)
			for k := 0; k < 1+rnd(3); k++ {
				it := items[rnd(len(items))]
				rs.Add(it)
				if rnd(2) == 0 {
					ws.Add(it)
					rs.Add(it)
				}
			}
			return Access{ID: id, Kind: kind, ReadSet: rs, WriteSet: ws}
		}
		var ms, bs []Access
		for i := 0; i < 2+rnd(5); i++ {
			ms = append(ms, mk(itoa("Tm", i), tx.Tentative))
		}
		for i := 0; i < 1+rnd(4); i++ {
			bs = append(bs, mk(itoa("Tb", i), tx.Base))
		}
		g := Build(ms, bs)
		for _, s := range strategies {
			b, err := s.ComputeB(g)
			if err != nil {
				t.Fatalf("trial %d, %s: %v", trial, s.Name(), err)
			}
			removed := make(map[int]bool, len(b))
			for _, v := range b {
				removed[v] = true
				if g.Kind(v) != tx.Tentative {
					t.Fatalf("trial %d, %s: backed out base transaction %s",
						trial, s.Name(), g.ID(v))
				}
			}
			if !g.Acyclic(removed) {
				t.Fatalf("trial %d, %s: cycles remain after back-out", trial, s.Name())
			}
		}
	}
}

// TestExhaustiveIsMinimal checks, on fuzzed graphs, that no strategy beats
// Exhaustive on total back-out cost.
func TestExhaustiveIsMinimal(t *testing.T) {
	items := []model.Item{"a", "b", "c"}
	next := uint64(999)
	rnd := func(n int) int {
		next = next*6364136223846793005 + 1442695040888963407
		return int(next>>33) % n
	}
	cost := func(g *Graph, b []int) int {
		c := 0
		for _, v := range b {
			c += g.Cost(v)
		}
		return c
	}
	for trial := 0; trial < 100; trial++ {
		mk := func(id string, kind tx.Kind) Access {
			rs, ws := make(model.ItemSet), make(model.ItemSet)
			it := items[rnd(len(items))]
			rs.Add(it)
			ws.Add(it)
			it2 := items[rnd(len(items))]
			rs.Add(it2)
			return Access{ID: id, Kind: kind, ReadSet: rs, WriteSet: ws}
		}
		var ms, bs []Access
		for i := 0; i < 2+rnd(4); i++ {
			ms = append(ms, mk(itoa("Tm", i), tx.Tentative))
		}
		for i := 0; i < 1+rnd(3); i++ {
			bs = append(bs, mk(itoa("Tb", i), tx.Base))
		}
		g := Build(ms, bs)
		opt, err := (Exhaustive{}).ComputeB(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []Strategy{TwoCycle{}, GreedyCost{}, GreedyDegree{}, AllCyclic{}} {
			b, err := s.ComputeB(g)
			if err != nil {
				t.Fatal(err)
			}
			if cost(g, b) < cost(g, opt) {
				t.Errorf("trial %d: %s cost %d beats exhaustive %d",
					trial, s.Name(), cost(g, b), cost(g, opt))
			}
		}
	}
}

func TestSCCsPartitionVertices(t *testing.T) {
	g, _, _ := example1Graph(t)
	seen := make(map[int]bool)
	total := 0
	for _, scc := range g.SCCs(nil) {
		for _, v := range scc {
			if seen[v] {
				t.Fatalf("vertex %d in two SCCs", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != g.Len() {
		t.Errorf("SCCs cover %d of %d vertices", total, g.Len())
	}
}

// TestTheorem1Direction checks the easy direction of Theorem 1 on Example 1
// data: after B is removed, an acyclic graph admits a merged serial order
// (topological), i.e. the histories became serializable.
func TestTheorem1Direction(t *testing.T) {
	g, _, _ := example1Graph(t)
	b, err := (GreedyCost{}).ComputeB(g)
	if err != nil {
		t.Fatal(err)
	}
	removed := map[int]bool{}
	for _, v := range b {
		removed[v] = true
	}
	if !g.Acyclic(removed) {
		t.Fatal("not acyclic after back-out")
	}
	// Topological order exists over the remaining vertices.
	indeg := make(map[int]int)
	for v := 0; v < g.Len(); v++ {
		if removed[v] {
			continue
		}
		for _, w := range g.Succ(v) {
			if !removed[w] {
				indeg[w]++
			}
		}
	}
	placed := 0
	queue := []int{}
	for v := 0; v < g.Len(); v++ {
		if !removed[v] && indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		placed++
		for _, w := range g.Succ(v) {
			if removed[w] {
				continue
			}
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if placed != g.Len()-len(b) {
		t.Errorf("topological order placed %d of %d", placed, g.Len()-len(b))
	}
}

func itoa(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

// TestSCCsAgainstBruteForce validates Tarjan's output against a brute-force
// mutual-reachability computation on fuzzed graphs.
func TestSCCsAgainstBruteForce(t *testing.T) {
	items := []model.Item{"a", "b", "c", "d"}
	next := uint64(4242)
	rnd := func(n int) int {
		next = next*6364136223846793005 + 1442695040888963407
		return int(next>>33) % n
	}
	for trial := 0; trial < 150; trial++ {
		mk := func(id string, kind tx.Kind) Access {
			rs, ws := make(model.ItemSet), make(model.ItemSet)
			for k := 0; k < 1+rnd(3); k++ {
				it := items[rnd(len(items))]
				rs.Add(it)
				if rnd(2) == 0 {
					ws.Add(it)
				}
			}
			return Access{ID: id, Kind: kind, ReadSet: rs, WriteSet: ws}
		}
		var ms, bs []Access
		for i := 0; i < 2+rnd(4); i++ {
			ms = append(ms, mk(itoa("Tm", i), tx.Tentative))
		}
		for i := 0; i < 1+rnd(3); i++ {
			bs = append(bs, mk(itoa("Tb", i), tx.Base))
		}
		g := Build(ms, bs)
		n := g.Len()
		// Brute force: reach[u][v] via repeated relaxation.
		reach := make([][]bool, n)
		for u := 0; u < n; u++ {
			reach[u] = make([]bool, n)
			for _, v := range g.Succ(u) {
				reach[u][v] = true
			}
		}
		for changed := true; changed; {
			changed = false
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					if !reach[u][v] {
						continue
					}
					for w := 0; w < n; w++ {
						if reach[v][w] && !reach[u][w] {
							reach[u][w] = true
							changed = true
						}
					}
				}
			}
		}
		sameSCC := func(u, v int) bool {
			return u == v || (reach[u][v] && reach[v][u])
		}
		// Tarjan's components must match the mutual-reachability relation.
		comp := make([]int, n)
		for ci, scc := range g.SCCs(nil) {
			for _, v := range scc {
				comp[v] = ci
			}
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if (comp[u] == comp[v]) != sameSCC(u, v) {
					t.Fatalf("trial %d: SCC mismatch for %d,%d (tarjan %v, brute %v)",
						trial, u, v, comp[u] == comp[v], sameSCC(u, v))
				}
			}
		}
		// And Acyclic agrees with "no vertex reaches itself".
		cyc := false
		for u := 0; u < n; u++ {
			if reach[u][u] {
				cyc = true
			}
		}
		if g.Acyclic(nil) == cyc {
			t.Fatalf("trial %d: Acyclic=%v but brute-force cyclic=%v", trial, g.Acyclic(nil), cyc)
		}
	}
}

func TestDotExport(t *testing.T) {
	g, _, _ := example1Graph(t)
	dot := g.Dot(map[int]bool{g.VertexByID("Tm3"): true})
	for _, want := range []string{
		"digraph precedence",
		`"Tm1" [shape=ellipse]`,
		`"Tb1" [shape=box]`,
		`"Tm3" [shape=ellipse, style=dashed, color=gray]`,
		`"Tb2" -> "Tm1"`,
		`"Tm3" -> "Tb1" [color=gray, style=dashed]`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot missing %q:\n%s", want, dot)
		}
	}
}

// buildNaive is the original O(n^2 * items) pairwise construction, kept as
// the differential-testing oracle for the item-indexed Build.
func buildNaive(mobile, base []Access) [][2]string {
	type edge = [2]string
	var out []edge
	seen := make(map[edge]bool)
	conflicts := func(a, b Access) bool {
		return !a.WriteSet.Disjoint(b.ReadSet) ||
			!a.ReadSet.Disjoint(b.WriteSet) ||
			!a.WriteSet.Disjoint(b.WriteSet)
	}
	add := func(u, v string) {
		e := edge{u, v}
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	for i := range mobile {
		for j := i + 1; j < len(mobile); j++ {
			if conflicts(mobile[i], mobile[j]) {
				add(mobile[i].ID, mobile[j].ID)
			}
		}
	}
	for i := range base {
		for j := i + 1; j < len(base); j++ {
			if conflicts(base[i], base[j]) {
				add(base[i].ID, base[j].ID)
			}
		}
	}
	for _, m := range mobile {
		for _, b := range base {
			if !m.ReadSet.Disjoint(b.WriteSet) {
				add(m.ID, b.ID)
			}
			if !b.ReadSet.Disjoint(m.WriteSet) {
				add(b.ID, m.ID)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// TestIndexedBuildMatchesNaive differentially tests the item-indexed graph
// construction against the pairwise oracle on fuzzed access patterns,
// including blind writes.
func TestIndexedBuildMatchesNaive(t *testing.T) {
	items := []model.Item{"a", "b", "c", "d", "e"}
	next := uint64(555)
	rnd := func(n int) int {
		next = next*6364136223846793005 + 1442695040888963407
		return int(next>>33) % n
	}
	for trial := 0; trial < 300; trial++ {
		mk := func(id string, kind tx.Kind) Access {
			rs, ws := make(model.ItemSet), make(model.ItemSet)
			for k := 0; k < 1+rnd(3); k++ {
				it := items[rnd(len(items))]
				switch rnd(3) {
				case 0:
					rs.Add(it)
				case 1:
					rs.Add(it)
					ws.Add(it)
				default:
					ws.Add(it) // blind write
				}
			}
			return Access{ID: id, Kind: kind, ReadSet: rs, WriteSet: ws}
		}
		var ms, bs []Access
		for i := 0; i < 1+rnd(6); i++ {
			ms = append(ms, mk(itoa("Tm", i), tx.Tentative))
		}
		for i := 0; i < 1+rnd(5); i++ {
			bs = append(bs, mk(itoa("Tb", i), tx.Base))
		}
		got := Build(ms, bs).Edges()
		want := buildNaive(ms, bs)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d edges, oracle %d\n got %v\nwant %v",
				trial, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: edge %d: %v != %v", trial, i, got[i], want[i])
			}
		}
	}
}
