package graph

import "sort"

// Davidson's "breaking two-cycles optimally" treats the two-cycles among
// tentative transactions as an undirected graph and backs out a minimum-
// weight vertex cover of it (every two-cycle must lose at least one
// endpoint, and weights are the back-out costs). This file provides that
// cover: exact branch-and-bound for the small conflict graphs real merges
// produce, with a greedy fallback beyond a size limit.

// minVertexCover returns a minimum-total-weight vertex cover of the
// undirected edge set over the given candidate vertices. weight maps vertex
// -> cost. Vertices not incident to any edge are never chosen. exactLimit
// bounds the exact search; larger instances use the classic
// highest-degree-first greedy 2-approximation.
func minVertexCover(edges [][2]int, weight map[int]int, exactLimit int) []int {
	// Collect incident vertices.
	incident := make(map[int][]int) // vertex -> edge indices
	for ei, e := range edges {
		incident[e[0]] = append(incident[e[0]], ei)
		incident[e[1]] = append(incident[e[1]], ei)
	}
	if len(edges) == 0 {
		return nil
	}
	verts := make([]int, 0, len(incident))
	for v := range incident {
		verts = append(verts, v)
	}
	sort.Ints(verts)
	if len(verts) > exactLimit {
		return greedyCover(edges, incident, weight)
	}
	return exactCover(edges, verts, weight)
}

// exactCover enumerates subsets in increasing weight via branch and bound
// on the first uncovered edge (take either endpoint), which visits at most
// 2^|edges| branches but in practice collapses quickly.
func exactCover(edges [][2]int, verts []int, weight map[int]int) []int {
	bestCost := 1 << 30
	var best []int
	inCover := make(map[int]bool)

	var covered func() int // index of first uncovered edge, or -1
	covered = func() int {
		for ei, e := range edges {
			if !inCover[e[0]] && !inCover[e[1]] {
				return ei
			}
		}
		return -1
	}

	var cur []int
	curCost := 0
	var rec func()
	rec = func() {
		if curCost >= bestCost {
			return
		}
		ei := covered()
		if ei == -1 {
			bestCost = curCost
			best = append([]int(nil), cur...)
			return
		}
		for _, v := range []int{edges[ei][0], edges[ei][1]} {
			inCover[v] = true
			cur = append(cur, v)
			curCost += weight[v]
			rec()
			curCost -= weight[v]
			cur = cur[:len(cur)-1]
			inCover[v] = false
		}
	}
	rec()
	sort.Ints(best)
	return best
}

// greedyCover is the highest-degree-per-weight greedy fallback.
func greedyCover(edges [][2]int, incident map[int][]int, weight map[int]int) []int {
	coveredEdge := make([]bool, len(edges))
	remaining := len(edges)
	var cover []int
	inCover := make(map[int]bool)
	for remaining > 0 {
		best, bestScore := -1, -1.0
		for v, eis := range incident {
			if inCover[v] {
				continue
			}
			deg := 0
			for _, ei := range eis {
				if !coveredEdge[ei] {
					deg++
				}
			}
			if deg == 0 {
				continue
			}
			w := weight[v]
			if w <= 0 {
				w = 1
			}
			score := float64(deg) / float64(w)
			if score > bestScore || (score == bestScore && v < best) {
				best, bestScore = v, score
			}
		}
		if best == -1 {
			break // defensive; cannot happen while remaining > 0
		}
		inCover[best] = true
		cover = append(cover, best)
		for _, ei := range incident[best] {
			if !coveredEdge[ei] {
				coveredEdge[ei] = true
				remaining--
			}
		}
	}
	sort.Ints(cover)
	return cover
}
