package graph

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"tiermerge/internal/model"
)

// randAccesses builds n random accesses over a small item universe, with
// read/write overlap, blind writes and read-only transactions all possible.
func randAccesses(r *rand.Rand, prefix string, n, items int) []Access {
	out := make([]Access, n)
	for i := range out {
		rs, ws := make(model.ItemSet), make(model.ItemSet)
		for k := 0; k < 1+r.Intn(3); k++ {
			it := model.Item(fmt.Sprintf("x%d", r.Intn(items)))
			switch r.Intn(3) {
			case 0:
				rs.Add(it)
			case 1:
				ws.Add(it) // blind write unless also read below
			default:
				rs.Add(it)
				ws.Add(it)
			}
		}
		out[i] = Access{ID: fmt.Sprintf("%s%d", prefix, i), ReadSet: rs, WriteSet: ws}
	}
	return out
}

// TestIncrementalMatchesBuild grows the base tier in random chunks and
// checks that the extended graph is indistinguishable from a from-scratch
// build over the same prefix: same edges, same costs, same adjacency.
func TestIncrementalMatchesBuild(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		mobile := randAccesses(r, "m", r.Intn(6), 5)
		base := randAccesses(r, "b", r.Intn(12), 5)

		cut := 0
		if len(base) > 0 {
			cut = r.Intn(len(base) + 1)
		}
		inc := NewIncremental(mobile, base[:cut])
		mobileEdges := 0
		for rest := base[cut:]; len(rest) > 0; {
			step := 1 + r.Intn(3)
			if step > len(rest) {
				step = len(rest)
			}
			st := inc.Extend(rest[:step])
			if st.NewVertices != step {
				t.Fatalf("trial %d: NewVertices=%d, want %d", trial, st.NewVertices, step)
			}
			mobileEdges += st.MobileEdges
			rest = rest[step:]
		}

		got, want := inc.Graph(), Build(mobile, base)
		if !reflect.DeepEqual(got.Edges(), want.Edges()) {
			t.Fatalf("trial %d: edges diverge\n got %v\nwant %v", trial, got.Edges(), want.Edges())
		}
		if got.MobileLen != want.MobileLen || got.BaseLen != want.BaseLen {
			t.Fatalf("trial %d: shape %d+%d, want %d+%d",
				trial, got.MobileLen, got.BaseLen, want.MobileLen, want.BaseLen)
		}
		wantMobile := 0
		for v := 0; v < got.Len(); v++ {
			if got.Cost(v) != want.Cost(v) {
				t.Fatalf("trial %d: cost(%d)=%d, want %d", trial, v, got.Cost(v), want.Cost(v))
			}
			if !reflect.DeepEqual(got.Succ(v), want.Succ(v)) || !reflect.DeepEqual(got.Pred(v), want.Pred(v)) {
				t.Fatalf("trial %d: adjacency of %d diverges", trial, v)
			}
			if v >= got.MobileLen {
				for _, s := range want.Succ(v) {
					if s < want.MobileLen && baseAfterCut(want, v, cut) {
						wantMobile++
					}
				}
				for _, p := range want.Pred(v) {
					if p < want.MobileLen && baseAfterCut(want, v, cut) {
						wantMobile++
					}
				}
			}
		}
		if mobileEdges != wantMobile {
			t.Fatalf("trial %d: MobileEdges=%d, want %d", trial, mobileEdges, wantMobile)
		}
	}
}

// baseAfterCut reports whether base vertex v lies in the extension suffix
// (i.e. was added by Extend rather than the initial build).
func baseAfterCut(g *Graph, v, cut int) bool {
	return v >= g.MobileLen+cut
}

// TestExtendStatsNoMobileEdges checks the fast-retry classifier: a base
// extension whose items are disjoint from Hm adds no mobile-incident edge,
// and a read-read meeting (base reads what Hm read) also adds none —
// read-read is no conflict, so the prior merge report stays valid even
// though the footprints intersect.
func TestExtendStatsNoMobileEdges(t *testing.T) {
	rs := func(items ...model.Item) model.ItemSet {
		s := make(model.ItemSet)
		for _, it := range items {
			s.Add(it)
		}
		return s
	}
	mobile := []Access{{ID: "t1", ReadSet: rs("a"), WriteSet: rs("a")}}
	inc := NewIncremental(mobile, nil)

	if st := inc.Extend([]Access{{ID: "b1", ReadSet: rs("z"), WriteSet: rs("z")}}); st.MobileEdges != 0 {
		t.Fatalf("disjoint extension: MobileEdges=%d, want 0", st.MobileEdges)
	}
	// t1 writes a, so a base *reader* of a conflicts; use a pure read of an
	// item only read by a read-only tentative transaction instead.
	mobile2 := []Access{{ID: "t1", ReadSet: rs("a"), WriteSet: rs()}}
	inc2 := NewIncremental(mobile2, nil)
	if st := inc2.Extend([]Access{{ID: "b1", ReadSet: rs("a"), WriteSet: rs()}}); st.MobileEdges != 0 {
		t.Fatalf("read-read extension: MobileEdges=%d, want 0", st.MobileEdges)
	}
	if st := inc2.Extend([]Access{{ID: "b2", ReadSet: rs("a"), WriteSet: rs("a")}}); st.MobileEdges == 0 {
		t.Fatal("base write over a tentative read must add a mobile-incident edge")
	}
}
