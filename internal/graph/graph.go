// Package graph implements the precedence graph G(Hm, Hb) of Section 2.1
// (after Davidson '84) together with cycle detection and the back-out
// strategies that compute the set B of undesirable tentative transactions
// whose removal breaks every cycle.
//
// Vertices are the transactions of the tentative history Hm and the base
// history Hb. An edge Ti -> Tj means Ti must precede Tj in any merged
// serial history:
//
//   - two tentative transactions with conflicting operations are ordered as
//     in Hm;
//   - two base transactions with conflicting operations are ordered as in
//     Hb;
//   - across histories, a reader precedes the writer that updated what it
//     read: both histories start from the same database state, so a
//     transaction that read an item observed the value from before the other
//     history's update and must be serialized before it.
//
// The graph is acyclic iff Hm and Hb are serializable into a single merged
// history (Theorem 1).
package graph

import (
	"fmt"
	"sort"
	"strings"

	"tiermerge/internal/history"
	"tiermerge/internal/model"
	"tiermerge/internal/tx"
)

// Access is the conflict-relevant footprint of one transaction: its identity
// and its actual read and write sets. Accesses normally come from executed
// effects (AccessesOf) but can be declared directly, e.g. to reproduce the
// paper's Example 1 verbatim.
type Access struct {
	ID       string
	Kind     tx.Kind
	ReadSet  model.ItemSet
	WriteSet model.ItemSet
	// Delta is the subset of WriteSet the transaction touched only as pure
	// commutative increments (tx.Effect.DeltaPure): delta-written, and read
	// only through the update's own implicit pre-read. A conflict pair in
	// which both sides access the item through Delta commutes and
	// contributes no precedence edge (the edge is elided; Graph.Elided
	// counts them). A nil Delta (hand-declared accesses, the value-write
	// baseline) disables elision for the access.
	Delta model.ItemSet
}

// AccessesOf extracts the access footprints from an executed history,
// without delta classification: every conflict gets its precedence edge,
// the paper's literal Section 2.1 construction. DeltaAccessesOf is the
// delta-aware variant the merging protocol uses by default.
func AccessesOf(a *history.Augmented) []Access {
	out := make([]Access, a.H.Len())
	for i, eff := range a.Effects {
		out[i] = Access{
			ID:       a.H.Txn(i).ID,
			Kind:     a.H.Txn(i).Kind,
			ReadSet:  eff.ReadSet,
			WriteSet: eff.WriteSet,
		}
	}
	return out
}

// DeltaAccessesOf extracts access footprints with delta classification:
// each access's Delta set carries the items it touched only as pure
// commutative increments, so the builder elides the edges of delta-delta
// conflict pairs. The merged outcome is unchanged for acyclic graphs and
// strictly better where delta-delta 2-cycles would otherwise force
// back-outs; the value-write baseline (merge.Options.DisableDeltas)
// falls back to AccessesOf.
func DeltaAccessesOf(a *history.Augmented) []Access {
	out := AccessesOf(a)
	for i, eff := range a.Effects {
		out[i].Delta = eff.DeltaPure()
	}
	return out
}

// Graph is the precedence graph. Vertices 0..MobileLen-1 are the tentative
// transactions of Hm in order; vertices MobileLen..MobileLen+BaseLen-1 are
// the base transactions of Hb in order.
type Graph struct {
	MobileLen int
	BaseLen   int
	// Elided counts the conflict pairs that needed no precedence edge
	// because both sides touched the shared item only as pure commutative
	// deltas (Access.Delta). It is the graph-size saving delta-merge
	// semantics buys over the value-write reading of the same histories.
	Elided int

	ids  []string
	kind []tx.Kind
	succ [][]int
	pred [][]int
	// cost is the back-out cost weight of each tentative vertex:
	// 1 + |reads-from closure within Hm|. Strategies minimizing total
	// back-out cost use it; it is 1 for base vertices (never backed out).
	cost []int
}

// Build constructs the precedence graph from the two access sequences.
// Construction is item-indexed: instead of testing every transaction pair
// (O(n² · items)), it groups accesses per item and emits conflict pairs
// only where transactions actually meet — the way a log-parsing
// implementation would work (Section 7.1 builds the graph "by parsing the
// log ... only once"). Build delegates to the retained-index builder; use
// NewIncremental directly when the base tier will be extended later.
func Build(mobile, base []Access) *Graph {
	return NewIncremental(mobile, base).Graph()
}

// BuildFromHistories executes nothing; it builds the graph from two already
// executed (augmented) histories.
func BuildFromHistories(am, ab *history.Augmented) *Graph {
	return Build(AccessesOf(am), AccessesOf(ab))
}

// computeCosts assigns each tentative vertex the Davidson back-out cost
// 1 + |transitive reads-from closure within Hm|: backing out v forces every
// transaction that (transitively) read from it to be handled too.
func (g *Graph) computeCosts(mobile []Access) {
	// readersOf[i] = tentative indices that directly read an item last
	// written by i.
	readersOf := make([][]int, len(mobile))
	lastWriter := make(map[model.Item]int)
	for j, a := range mobile {
		seen := make(map[int]bool)
		for it := range a.ReadSet {
			if w, ok := lastWriter[it]; ok && !seen[w] {
				seen[w] = true
				readersOf[w] = append(readersOf[w], j)
			}
		}
		for it := range a.WriteSet {
			lastWriter[it] = j
		}
	}
	for i := range mobile {
		closure := make(map[int]bool)
		stack := []int{i}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, r := range readersOf[v] {
				if !closure[r] {
					closure[r] = true
					stack = append(stack, r)
				}
			}
		}
		delete(closure, i)
		g.cost[i] = 1 + len(closure)
	}
	for i := g.MobileLen; i < len(g.cost); i++ {
		g.cost[i] = 1
	}
}

// Len returns the total number of vertices.
func (g *Graph) Len() int { return len(g.ids) }

// ID returns the transaction ID of vertex v.
func (g *Graph) ID(v int) string { return g.ids[v] }

// Kind returns whether vertex v is tentative or base.
func (g *Graph) Kind(v int) tx.Kind { return g.kind[v] }

// Cost returns the back-out cost weight of vertex v.
func (g *Graph) Cost(v int) int { return g.cost[v] }

// Succ returns the successors of v (v must precede them).
// Succ returns the successor list of v. The slice aliases the graph's
// internal adjacency storage.
//
//tiermerge:immutable
func (g *Graph) Succ(v int) []int { return g.succ[v] }

// Pred returns the predecessors of v.
// Pred returns the predecessor list of v. The slice aliases the graph's
// internal adjacency storage.
//
//tiermerge:immutable
func (g *Graph) Pred(v int) []int { return g.pred[v] }

// VertexByID returns the vertex index of the transaction with the given ID,
// or -1.
func (g *Graph) VertexByID(id string) int {
	for i, x := range g.ids {
		if x == id {
			return i
		}
	}
	return -1
}

// Edges returns every edge as ID pairs, deterministically ordered. Intended
// for reports and tests (e.g. checking Figure 1).
func (g *Graph) Edges() [][2]string {
	var out [][2]string
	for u := range g.succ {
		for _, v := range g.succ[u] {
			out = append(out, [2]string{g.ids[u], g.ids[v]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// HasEdge reports whether the edge from ID u to ID v exists.
func (g *Graph) HasEdge(u, v string) bool {
	ui, vi := g.VertexByID(u), g.VertexByID(v)
	if ui < 0 || vi < 0 {
		return false
	}
	for _, s := range g.succ[ui] {
		if s == vi {
			return true
		}
	}
	return false
}

// Acyclic reports whether the graph, minus the removed vertices, has no
// cycle. A nil removed set tests the whole graph.
func (g *Graph) Acyclic(removed map[int]bool) bool {
	return len(g.cyclicVertices(removed)) == 0
}

// cyclicVertices returns every vertex that lies on some cycle (i.e. belongs
// to a strongly connected component of size > 1), honoring the removed mask.
func (g *Graph) cyclicVertices(removed map[int]bool) []int {
	sccs := g.SCCs(removed)
	var out []int
	for _, scc := range sccs {
		if len(scc) > 1 {
			out = append(out, scc...)
		}
	}
	sort.Ints(out)
	return out
}

// SCCs computes the strongly connected components of the graph minus the
// removed vertices, using Tarjan's algorithm (iterative).
func (g *Graph) SCCs(removed map[int]bool) [][]int {
	n := g.Len()
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack   []int
		sccs    [][]int
		counter int
	)
	type frame struct {
		v, childIdx int
	}
	for root := 0; root < n; root++ {
		if removed[root] || index[root] != unvisited {
			continue
		}
		work := []frame{{v: root}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.childIdx == 0 {
				index[v] = counter
				low[v] = counter
				counter++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.childIdx < len(g.succ[v]) {
				w := g.succ[v][f.childIdx]
				f.childIdx++
				if removed[w] {
					continue
				}
				if index[w] == unvisited {
					work = append(work, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished
			if low[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sort.Ints(scc)
				sccs = append(sccs, scc)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return sccs
}

// FindCycle returns the IDs along one cycle of the graph minus removed, or
// nil if acyclic. Used for diagnostics.
func (g *Graph) FindCycle(removed map[int]bool) []string {
	for _, scc := range g.SCCs(removed) {
		if len(scc) < 2 {
			continue
		}
		inSCC := make(map[int]bool, len(scc))
		for _, v := range scc {
			inSCC[v] = true
		}
		// Walk successors inside the SCC until a vertex repeats.
		start := scc[0]
		seenAt := map[int]int{start: 0}
		path := []int{start}
		cur := start
		for {
			next := -1
			for _, w := range g.succ[cur] {
				if inSCC[w] && !removed[w] {
					next = w
					break
				}
			}
			if next == -1 {
				return nil // should not happen inside a nontrivial SCC
			}
			if at, ok := seenAt[next]; ok {
				ids := make([]string, 0, len(path)-at)
				for _, v := range path[at:] {
					ids = append(ids, g.ids[v])
				}
				return ids
			}
			seenAt[next] = len(path)
			path = append(path, next)
			cur = next
		}
	}
	return nil
}

// TwoCycles returns every 2-cycle as vertex pairs (u < v).
func (g *Graph) TwoCycles() [][2]int {
	var out [][2]int
	for u := range g.succ {
		for _, v := range g.succ[u] {
			if v <= u {
				continue
			}
			for _, w := range g.succ[v] {
				if w == u {
					out = append(out, [2]int{u, v})
					break
				}
			}
		}
	}
	return out
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("precedence graph: %d tentative + %d base vertices, %d edges",
		g.MobileLen, g.BaseLen, func() int {
			n := 0
			for _, s := range g.succ {
				n += len(s)
			}
			return n
		}())
}

// Dot renders the graph in Graphviz DOT form: tentative vertices as
// ellipses, base vertices as boxes, with removed vertices grayed out.
func (g *Graph) Dot(removed map[int]bool) string {
	var b strings.Builder
	b.WriteString("digraph precedence {\n  rankdir=LR;\n")
	for v := 0; v < g.Len(); v++ {
		shape := "ellipse"
		if g.Kind(v) == tx.Base {
			shape = "box"
		}
		style := ""
		if removed[v] {
			style = `, style=dashed, color=gray`
		}
		fmt.Fprintf(&b, "  %q [shape=%s%s];\n", g.ID(v), shape, style)
	}
	for u := 0; u < g.Len(); u++ {
		for _, v := range g.Succ(u) {
			attr := ""
			if removed[u] || removed[v] {
				attr = " [color=gray, style=dashed]"
			}
			fmt.Fprintf(&b, "  %q -> %q%s;\n", g.ID(u), g.ID(v), attr)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
