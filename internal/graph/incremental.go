package graph

import (
	"sort"

	"tiermerge/internal/model"
	"tiermerge/internal/tx"
)

// Incremental is a precedence-graph builder that retains its per-item access
// index and edge set, so the base tier can be grown in place after the
// initial build. The merge pipeline uses it across admission retries: base
// transactions are durable and only *append* to Hb between structural
// changes, and the precedence graph is monotone in the base suffix — new
// base entries add vertices and edges but never remove or reorder anything
// among existing vertices. Extending the attempt-1 graph with the entries
// committed since its snapshot therefore yields exactly the graph a
// from-scratch build over the longer prefix would produce, at a cost
// proportional to the suffix.
type Incremental struct {
	mobile []Access
	g      *Graph
	edges  map[[2]int]struct{}
	// elided records conflict pairs skipped because both endpoints touch
	// the shared item only as pure commutative deltas; kept for
	// deduplicated accounting (Graph.Elided).
	elided map[[2]int]struct{}
	// perItem groups accesses per item, split by tier; itemRef.writes is
	// WriteSet membership for that item (true for blind writes too).
	perItem map[model.Item]*itemIndex
}

type itemRef struct {
	vertex int
	writes bool
	// delta marks the access as delta-pure on this item: the only read is
	// the update's own pre-read and the write is a state-independent
	// increment, so it commutes with any other delta-pure access of the
	// item and the conflict pair needs no precedence edge.
	delta bool
}

type itemIndex struct {
	mobile, base []itemRef
}

// ExtendStats summarizes one Extend call.
type ExtendStats struct {
	// NewVertices is the number of base vertices appended.
	NewVertices int
	// NewEdges is the number of edges added (after deduplication).
	NewEdges int
	// MobileEdges counts the new edges incident to a tentative vertex. When
	// zero, the extension is invisible to Hm: the back-out set, the rewrite
	// and the forwarded updates computed on the pre-extension graph remain
	// valid (only base-base ordering changed).
	MobileEdges int
}

// NewIncremental builds the precedence graph over the two access sequences
// and retains the construction index for later Extend calls. Build is a thin
// wrapper over it; the resulting graph is identical.
func NewIncremental(mobile, base []Access) *Incremental {
	n := len(mobile)
	inc := &Incremental{
		mobile: mobile,
		g: &Graph{
			MobileLen: n,
			ids:       make([]string, n),
			kind:      make([]tx.Kind, n),
			succ:      make([][]int, n),
			pred:      make([][]int, n),
			cost:      make([]int, n),
		},
		edges:   make(map[[2]int]struct{}),
		elided:  make(map[[2]int]struct{}),
		perItem: make(map[model.Item]*itemIndex),
	}
	for i, a := range mobile {
		inc.g.ids[i] = a.ID
		inc.g.kind[i] = tx.Tentative
		inc.collectMobile(a, i)
	}
	// Rule 1: same-tier conflicting tentative pairs, ordered as in Hm —
	// unless both sides touch the item only as pure deltas, in which case
	// the pair commutes and the edge is elided.
	for _, e := range inc.perItem {
		for x := 0; x < len(e.mobile); x++ {
			for y := x + 1; y < len(e.mobile); y++ {
				mx, my := e.mobile[x], e.mobile[y]
				switch {
				case mx.delta && my.delta:
					inc.elide(mx.vertex, my.vertex)
				case mx.writes || my.writes:
					inc.addEdge(mx.vertex, my.vertex, nil)
				}
			}
		}
	}
	inc.g.computeCosts(mobile)
	inc.Extend(base)
	for i := range inc.g.succ {
		sort.Ints(inc.g.succ[i])
		sort.Ints(inc.g.pred[i])
	}
	return inc
}

// Graph returns the built graph. The graph stays owned by the builder:
// Extend mutates it in place.
func (inc *Incremental) Graph() *Graph { return inc.g }

// Extend appends base accesses to the graph: one vertex per access, rule-2
// edges against earlier base accesses of the same items (existing vertices
// always precede new ones in Hb order), and rule-3 cross edges against the
// tentative accesses. Existing edges are never removed or reordered, so the
// result equals a from-scratch build over the concatenated base sequence.
func (inc *Incremental) Extend(newBase []Access) ExtendStats {
	g := inc.g
	st := ExtendStats{NewVertices: len(newBase)}
	touched := make(map[int]struct{})
	for _, a := range newBase {
		v := len(g.ids)
		g.ids = append(g.ids, a.ID)
		g.kind = append(g.kind, tx.Base)
		g.succ = append(g.succ, nil)
		g.pred = append(g.pred, nil)
		g.cost = append(g.cost, 1)
		g.BaseLen++
		pair := func(it model.Item, writes bool) {
			e := inc.perItem[it]
			if e == nil {
				e = &itemIndex{}
				inc.perItem[it] = e
			}
			delta := a.Delta.Has(it)
			// Rule 2: conflicting base pairs ordered as in Hb; two pure
			// deltas commute and need no ordering.
			for _, b := range e.base {
				switch {
				case b.delta && delta:
					inc.elide(b.vertex, v)
				case b.writes || writes:
					if inc.addEdge(b.vertex, v, touched) {
						st.NewEdges++
					}
				}
			}
			// Rule 3: cross edges, reader precedes writer. A delta-pure
			// pair produces no edge in either direction: each side's only
			// read of the item is its own pre-read, whose observed value
			// its written increment does not depend on, so neither needs
			// to be serialized before the other.
			reads := a.ReadSet.Has(it)
			for _, m := range e.mobile {
				bothDelta := delta && m.delta
				if inc.mobile[m.vertex].ReadSet.Has(it) && writes {
					switch {
					case bothDelta:
						inc.elide(m.vertex, v)
					case inc.addEdge(m.vertex, v, touched):
						st.NewEdges++
						st.MobileEdges++
					}
				}
				if reads && m.writes {
					switch {
					case bothDelta:
						inc.elide(v, m.vertex)
					case inc.addEdge(v, m.vertex, touched):
						st.NewEdges++
						st.MobileEdges++
					}
				}
			}
			e.base = append(e.base, itemRef{vertex: v, writes: writes, delta: delta})
		}
		for it := range a.ReadSet {
			pair(it, a.WriteSet.Has(it))
		}
		for it := range a.WriteSet {
			if !a.ReadSet.Has(it) { // blind write: not already paired
				pair(it, true)
			}
		}
	}
	for u := range touched {
		sort.Ints(g.succ[u])
		sort.Ints(g.pred[u])
	}
	return st
}

// addEdge inserts u -> v unless it is a self-loop or a duplicate, reporting
// whether an edge was added. touched (may be nil during the initial build,
// which sorts everything at the end) collects vertices whose adjacency lists
// need re-sorting.
func (inc *Incremental) addEdge(u, v int, touched map[int]struct{}) bool {
	if u == v {
		return false
	}
	key := [2]int{u, v}
	if _, dup := inc.edges[key]; dup {
		return false
	}
	inc.edges[key] = struct{}{}
	inc.g.succ[u] = append(inc.g.succ[u], v)
	inc.g.pred[v] = append(inc.g.pred[v], u)
	if touched != nil {
		touched[u] = struct{}{}
		touched[v] = struct{}{}
	}
	return true
}

// elide records a precedence edge skipped because both endpoints access
// the shared item only as pure commutative deltas. Pairs are deduplicated
// the same way edges are, and a pair that already carries a real edge
// (a conflict through some non-delta item) is not counted — the edge is
// there regardless, so nothing was saved for it.
func (inc *Incremental) elide(u, v int) {
	if u == v {
		return
	}
	key := [2]int{u, v}
	if _, dup := inc.elided[key]; dup {
		return
	}
	if _, present := inc.edges[key]; present {
		return
	}
	inc.elided[key] = struct{}{}
	inc.g.Elided++
}

// collectMobile records a tentative access in the per-item index.
func (inc *Incremental) collectMobile(a Access, vertex int) {
	rec := func(it model.Item, writes bool) {
		e := inc.perItem[it]
		if e == nil {
			e = &itemIndex{}
			inc.perItem[it] = e
		}
		e.mobile = append(e.mobile, itemRef{vertex: vertex, writes: writes, delta: a.Delta.Has(it)})
	}
	for it := range a.ReadSet {
		rec(it, a.WriteSet.Has(it))
	}
	for it := range a.WriteSet {
		if !a.ReadSet.Has(it) { // blind write: not already recorded
			rec(it, true)
		}
	}
}
