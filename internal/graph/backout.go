package graph

import (
	"errors"
	"fmt"
	"sort"

	"tiermerge/internal/tx"
)

// ErrUnbreakable is returned when cycles remain that contain no tentative
// vertex. This cannot happen for graphs built from a serial Hm and a serial
// Hb (base-only edges always point forward in Hb), but strategies check
// defensively.
var ErrUnbreakable = errors.New("graph: cycle contains only base transactions")

// Strategy computes the back-out set B: tentative vertices whose removal
// makes the precedence graph acyclic. Minimizing |B| (or total back-out
// cost) is NP-complete, so most strategies are heuristics; Davidson's
// simulations showed good heuristics get close to optimal, and the paper
// adopts them wholesale (Section 2.1 step 2).
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// ComputeB returns the vertex indices to back out, sorted ascending.
	ComputeB(g *Graph) ([]int, error)
}

// GreedyCost backs out, while cycles remain, the cyclic tentative vertex
// with the smallest Davidson back-out cost (1 + reads-from closure size),
// breaking ties by fewer cycle memberships being irrelevant — ties go to the
// earliest history position. This is the library default: it reproduces the
// paper's Example 1 choice (Tm3 is the cheapest vertex on the cycle).
type GreedyCost struct{}

// Name implements Strategy.
func (GreedyCost) Name() string { return "greedy-cost" }

// ComputeB implements Strategy.
func (GreedyCost) ComputeB(g *Graph) ([]int, error) {
	removed := make(map[int]bool)
	var b []int
	for {
		cyclic := g.cyclicVertices(removed)
		if len(cyclic) == 0 {
			break
		}
		best := -1
		for _, v := range cyclic {
			if g.Kind(v) != tx.Tentative {
				continue
			}
			if best == -1 || g.Cost(v) < g.Cost(best) {
				best = v
			}
		}
		if best == -1 {
			return nil, ErrUnbreakable
		}
		removed[best] = true
		b = append(b, best)
	}
	sort.Ints(b)
	return b, nil
}

// GreedyDegree backs out, while cycles remain, the cyclic tentative vertex
// with the largest in-degree x out-degree product restricted to its
// component — the classic feedback-vertex heuristic. It tends to produce
// small B at the price of ignoring back-out cost.
type GreedyDegree struct{}

// Name implements Strategy.
func (GreedyDegree) Name() string { return "greedy-degree" }

// ComputeB implements Strategy.
func (GreedyDegree) ComputeB(g *Graph) ([]int, error) {
	removed := make(map[int]bool)
	var b []int
	for {
		sccs := g.SCCs(removed)
		progressed := false
		for _, scc := range sccs {
			if len(scc) < 2 {
				continue
			}
			inSCC := make(map[int]bool, len(scc))
			for _, v := range scc {
				inSCC[v] = true
			}
			best, bestScore := -1, -1
			for _, v := range scc {
				if g.Kind(v) != tx.Tentative {
					continue
				}
				in, out := 0, 0
				for _, p := range g.Pred(v) {
					if inSCC[p] && !removed[p] {
						in++
					}
				}
				for _, s := range g.Succ(v) {
					if inSCC[s] && !removed[s] {
						out++
					}
				}
				if score := in * out; score > bestScore {
					best, bestScore = v, score
				}
			}
			if best == -1 {
				return nil, ErrUnbreakable
			}
			removed[best] = true
			b = append(b, best)
			progressed = true
		}
		if !progressed {
			break
		}
	}
	sort.Ints(b)
	return b, nil
}

// TwoCycle is Davidson's "breaking two-cycles optimally": a tentative/base
// two-cycle forces its tentative endpoint out (the mandatory moves); the
// tentative/tentative two-cycles form an undirected conflict graph whose
// minimum-weight vertex cover (weights = back-out costs) is backed out —
// exactly for small covers, greedily beyond MaxExact vertices. Remaining
// longer cycles, rare in practice, are then broken by the cheapest-cost
// greedy.
type TwoCycle struct {
	// MaxExact bounds the exact vertex-cover search (default 18 incident
	// vertices).
	MaxExact int
}

// Name implements Strategy.
func (TwoCycle) Name() string { return "two-cycle" }

// ComputeB implements Strategy.
func (s TwoCycle) ComputeB(g *Graph) ([]int, error) {
	maxExact := s.MaxExact
	if maxExact == 0 {
		maxExact = 18
	}
	removed := make(map[int]bool)
	var b []int
	// Mandatory: tentative partners of tentative/base two-cycles.
	var ttEdges [][2]int
	for _, pair := range g.TwoCycles() {
		u, v := pair[0], pair[1]
		uT := g.Kind(u) == tx.Tentative
		vT := g.Kind(v) == tx.Tentative
		switch {
		case uT && !vT:
			if !removed[u] {
				removed[u] = true
				b = append(b, u)
			}
		case vT && !uT:
			if !removed[v] {
				removed[v] = true
				b = append(b, v)
			}
		case uT && vT:
			ttEdges = append(ttEdges, pair)
		default:
			return nil, ErrUnbreakable
		}
	}
	// Optimal cover of the tentative/tentative two-cycles, ignoring edges
	// already covered by the mandatory removals.
	var openEdges [][2]int
	weights := make(map[int]int)
	for _, e := range ttEdges {
		if removed[e[0]] || removed[e[1]] {
			continue
		}
		openEdges = append(openEdges, e)
		weights[e[0]] = g.Cost(e[0])
		weights[e[1]] = g.Cost(e[1])
	}
	for _, v := range minVertexCover(openEdges, weights, maxExact) {
		if !removed[v] {
			removed[v] = true
			b = append(b, v)
		}
	}
	// Remaining cycles: cheapest-cost greedy.
	for {
		cyclic := g.cyclicVertices(removed)
		if len(cyclic) == 0 {
			break
		}
		best := -1
		for _, v := range cyclic {
			if g.Kind(v) != tx.Tentative {
				continue
			}
			if best == -1 || g.Cost(v) < g.Cost(best) {
				best = v
			}
		}
		if best == -1 {
			return nil, ErrUnbreakable
		}
		removed[best] = true
		b = append(b, best)
	}
	sort.Ints(b)
	return b, nil
}

// Exhaustive finds a minimum back-out set exactly, by trying candidate sets
// in order of increasing total back-out cost (then cardinality). It is
// exponential and refuses graphs with more than MaxCandidates cyclic
// tentative vertices.
type Exhaustive struct {
	// MaxCandidates bounds the search (default 20).
	MaxCandidates int
}

// Name implements Strategy.
func (Exhaustive) Name() string { return "exhaustive" }

// ComputeB implements Strategy.
func (e Exhaustive) ComputeB(g *Graph) ([]int, error) {
	maxC := e.MaxCandidates
	if maxC == 0 {
		maxC = 20
	}
	var candidates []int
	for _, v := range g.cyclicVertices(nil) {
		if g.Kind(v) == tx.Tentative {
			candidates = append(candidates, v)
		}
	}
	if len(candidates) == 0 {
		if g.Acyclic(nil) {
			return nil, nil
		}
		return nil, ErrUnbreakable
	}
	if len(candidates) > maxC {
		return nil, fmt.Errorf("graph: exhaustive back-out over %d candidates exceeds limit %d",
			len(candidates), maxC)
	}
	type cand struct {
		set  []int
		cost int
	}
	var best *cand
	n := len(candidates)
	for mask := 0; mask < 1<<n; mask++ {
		var set []int
		cost := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				set = append(set, candidates[i])
				cost += g.Cost(candidates[i])
			}
		}
		if best != nil && (cost > best.cost || (cost == best.cost && len(set) >= len(best.set))) {
			continue
		}
		removed := make(map[int]bool, len(set))
		for _, v := range set {
			removed[v] = true
		}
		if g.Acyclic(removed) {
			best = &cand{set: set, cost: cost}
		}
	}
	if best == nil {
		return nil, ErrUnbreakable
	}
	sort.Ints(best.set)
	return best.set, nil
}

// AllCyclic backs out every tentative vertex lying on any cycle — the
// simplest (and most wasteful) strategy; used as the upper baseline in the
// strategy-comparison experiment (E9).
type AllCyclic struct{}

// Name implements Strategy.
func (AllCyclic) Name() string { return "all-cyclic" }

// ComputeB implements Strategy.
func (AllCyclic) ComputeB(g *Graph) ([]int, error) {
	var b []int
	for _, v := range g.cyclicVertices(nil) {
		if g.Kind(v) == tx.Tentative {
			b = append(b, v)
		}
	}
	removed := make(map[int]bool, len(b))
	for _, v := range b {
		removed[v] = true
	}
	if !g.Acyclic(removed) {
		return nil, ErrUnbreakable
	}
	sort.Ints(b)
	return b, nil
}

// kindTentative returns the tentative kind constant; indirection keeps the
// strategies independent of the tx package's enum values.
func kindTentative(g *Graph) (k kindOf) { return kindOf(1) }

type kindOf int
