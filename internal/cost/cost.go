// Package cost implements the Section 7.1 cost model: an explicit
// accounting of (1) communication between mobile and base nodes,
// (2) computing at the base node and (3) computing at the mobile node, for
// both the two-tier reprocessing protocol and the merging protocol.
//
// The paper's comparison is analytic — it reasons about counts of messages,
// reprocessed queries, lock acquisitions and forced log writes, not about a
// concrete DBMS's absolute speed. The model therefore counts events and
// converts them to abstract cost units through a configurable weight
// vector; experiment E8 sweeps workloads and reports both raw counters and
// weighted totals.
package cost

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
)

// Weights converts event counters into abstract cost units. The defaults
// encode the paper's qualitative relations: forced log I/O and query
// processing dominate base-node cost; per-byte communication is cheap but
// adds up for code shipping; graph building and rewriting are light
// in-memory operations on the mobile side.
type Weights struct {
	// Communication.
	MsgOverheadBytes int64 // fixed per-message framing
	CodeBytesPerStmt int64 // shipping one statement of transaction code
	ArgBytes         int64 // shipping one input argument
	SetEntryBytes    int64 // one read/write-set entry (item name)
	GraphEdgeBytes   int64 // one precedence-graph edge
	UpdateEntryBytes int64 // one forwarded update (item, value)
	ResultBytes      int64 // one reported re-execution result
	PerByteCost      int64 // cost units per byte on the wire

	// Base-node computing.
	TransformCost   int64 // turning one tentative transaction into a base transaction
	QueryCost       int64 // parse/validate/optimize/execute one statement
	LockCost        int64 // acquire+release one lock
	ForcedWriteCost int64 // force one commit record to the durable log
	ApplyEntryCost  int64 // install one forwarded update value
	GraphOpCost     int64 // one vertex/edge operation while building G(Hm, Hb)
	BackoutOpCost   int64 // one step of the back-out computation

	// Mobile-node computing.
	MobileGraphOpCost int64 // one vertex/edge operation while building G(Hm)
	RewriteOpCost     int64 // one pairwise can-follow/can-precede check
	PruneOpCost       int64 // one compensation or undo-repair operation
	ResultReportCost  int64 // informing the user of one re-execution result

	// Crash recovery (DESIGN.md §10).
	ReplayRecordCost int64 // decode + verify one journal record at recovery

	// Storage engine (DESIGN.md §14).
	CheckpointCost int64 // write + fsync + rename one checkpoint segment
}

// DefaultWeights returns the weight vector used by the experiments.
func DefaultWeights() Weights {
	return Weights{
		MsgOverheadBytes: 40,
		CodeBytesPerStmt: 64,
		ArgBytes:         8,
		SetEntryBytes:    8,
		GraphEdgeBytes:   8,
		UpdateEntryBytes: 16,
		ResultBytes:      16,
		PerByteCost:      1,

		TransformCost:   50,
		QueryCost:       100,
		LockCost:        10,
		ForcedWriteCost: 500,
		ApplyEntryCost:  10,
		GraphOpCost:     1,
		BackoutOpCost:   1,

		MobileGraphOpCost: 1,
		RewriteOpCost:     2,
		PruneOpCost:       20,
		ResultReportCost:  1,

		ReplayRecordCost: 2,

		CheckpointCost: 2000,
	}
}

// Counts is a plain tally of protocol events.
type Counts struct {
	// Communication events.
	Messages       int64
	Bytes          int64
	CodeStmtsSent  int64
	ArgsSent       int64
	SetEntriesSent int64
	GraphEdgesSent int64
	UpdatesSent    int64
	ResultsSent    int64

	// Base-node events.
	BaseTransforms   int64
	BaseQueries      int64
	BaseLocks        int64
	BaseForcedWrites int64
	BaseApplies      int64
	BaseGraphOps     int64
	BaseBackoutOps   int64

	// Mobile-node events.
	MobileGraphOps   int64
	MobileRewriteOps int64
	MobilePruneOps   int64
	MobileReports    int64

	// Outcome tallies.
	TxnsReprocessed int64
	TxnsSaved       int64
	TxnsBackedOut   int64
	MergesPerformed int64
	MergeFallbacks  int64
	// MergeRetries counts re-prepare attempts after a failed admission
	// validation (incremental graph extensions and full re-prepares alike).
	MergeRetries int64
	// AdmitBatches counts batched-admission critical sections; dividing
	// MergesPerformed by it gives the mean admission batch size.
	AdmitBatches int64
	// CrossShardMerges counts merges whose footprint spanned more than one
	// shard of a sharded base tier and therefore ran the two-phase
	// cross-shard admit instead of a single shard's pipeline. Always zero
	// on an unsharded cluster.
	CrossShardMerges int64
	// DeltaFolded counts tentative pure-delta writes that associative
	// folding collapsed into net forwarded increments: for each forwarded
	// delta item, every saved write of it beyond the first. Zero when
	// delta-merge semantics are disabled.
	DeltaFolded int64
	// EdgesElided counts precedence-graph conflict pairs that needed no
	// edge because both endpoints touch the shared item only as pure
	// commutative deltas (graph work and back-out exposure avoided).
	EdgesElided int64

	// Crash-recovery events (mobile journal replays and base-log replays
	// alike; see DESIGN.md §10).
	Recoveries         int64
	WalRecordsReplayed int64
	WalTailDropped     int64

	// Storage-engine events (checkpoint + log-truncation cycles and the
	// version-chain compaction they drive; see DESIGN.md §14).
	StoreCheckpoints       int64
	StoreVersionsCompacted int64
	StoreBytesTruncated    int64
}

// Add accumulates o into c.
func (c *Counts) Add(o Counts) {
	c.Messages += o.Messages
	c.Bytes += o.Bytes
	c.CodeStmtsSent += o.CodeStmtsSent
	c.ArgsSent += o.ArgsSent
	c.SetEntriesSent += o.SetEntriesSent
	c.GraphEdgesSent += o.GraphEdgesSent
	c.UpdatesSent += o.UpdatesSent
	c.ResultsSent += o.ResultsSent
	c.BaseTransforms += o.BaseTransforms
	c.BaseQueries += o.BaseQueries
	c.BaseLocks += o.BaseLocks
	c.BaseForcedWrites += o.BaseForcedWrites
	c.BaseApplies += o.BaseApplies
	c.BaseGraphOps += o.BaseGraphOps
	c.BaseBackoutOps += o.BaseBackoutOps
	c.MobileGraphOps += o.MobileGraphOps
	c.MobileRewriteOps += o.MobileRewriteOps
	c.MobilePruneOps += o.MobilePruneOps
	c.MobileReports += o.MobileReports
	c.TxnsReprocessed += o.TxnsReprocessed
	c.TxnsSaved += o.TxnsSaved
	c.TxnsBackedOut += o.TxnsBackedOut
	c.MergesPerformed += o.MergesPerformed
	c.MergeFallbacks += o.MergeFallbacks
	c.MergeRetries += o.MergeRetries
	c.AdmitBatches += o.AdmitBatches
	c.CrossShardMerges += o.CrossShardMerges
	c.DeltaFolded += o.DeltaFolded
	c.EdgesElided += o.EdgesElided
	c.Recoveries += o.Recoveries
	c.WalRecordsReplayed += o.WalRecordsReplayed
	c.WalTailDropped += o.WalTailDropped
	c.StoreCheckpoints += o.StoreCheckpoints
	c.StoreVersionsCompacted += o.StoreVersionsCompacted
	c.StoreBytesTruncated += o.StoreBytesTruncated
}

// Msg tallies one message of payloadBytes into the counts, applying the
// per-message overhead of w. It is the lock-free counterpart of
// Counters.Msg: concurrent protocol phases accumulate their charges into a
// private Counts delta and merge it into the shared Counters in one Add
// when they commit.
func (c *Counts) Msg(w Weights, payloadBytes int64) {
	c.Messages++
	c.Bytes += w.MsgOverheadBytes + payloadBytes
}

// Weighted converts the counts into cost units.
func (c Counts) Weighted(w Weights) Report {
	return Report{
		Comm: c.Bytes * w.PerByteCost,
		BaseCompute: c.BaseTransforms*w.TransformCost +
			c.BaseQueries*w.QueryCost +
			c.BaseLocks*w.LockCost +
			c.BaseForcedWrites*w.ForcedWriteCost +
			c.BaseApplies*w.ApplyEntryCost +
			c.BaseGraphOps*w.GraphOpCost +
			c.BaseBackoutOps*w.BackoutOpCost +
			c.StoreCheckpoints*w.CheckpointCost,
		MobileCompute: c.MobileGraphOps*w.MobileGraphOpCost +
			c.MobileRewriteOps*w.RewriteOpCost +
			c.MobilePruneOps*w.PruneOpCost +
			c.MobileReports*w.ResultReportCost +
			c.WalRecordsReplayed*w.ReplayRecordCost,
	}
}

// Each visits every counter as a (snake_case name, value) pair in struct
// declaration order — the single source of truth metric exporters walk, so
// adding a field to Counts automatically extends every dump.
func (c Counts) Each(f func(name string, v int64)) {
	v := reflect.ValueOf(c)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f(snakeCase(t.Field(i).Name), v.Field(i).Int())
	}
}

// snakeCase converts a CamelCase field name to snake_case
// ("BaseForcedWrites" -> "base_forced_writes").
func snakeCase(s string) string {
	var b strings.Builder
	for i, r := range s {
		if r >= 'A' && r <= 'Z' {
			if i > 0 {
				b.WriteByte('_')
			}
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// String renders the headline counters for reports.
func (c Counts) String() string {
	return fmt.Sprintf(
		"msgs=%d bytes=%d reprocessed=%d saved=%d backedout=%d merges=%d fallbacks=%d baseQ=%d baseIO=%d baseLocks=%d",
		c.Messages, c.Bytes, c.TxnsReprocessed, c.TxnsSaved, c.TxnsBackedOut,
		c.MergesPerformed, c.MergeFallbacks, c.BaseQueries, c.BaseForcedWrites, c.BaseLocks)
}

// Counters is a concurrency-safe accumulator of Counts.
type Counters struct {
	mu sync.Mutex
	c  Counts
}

// Msg records one message of payloadBytes, applying the per-message
// overhead of w.
func (c *Counters) Msg(w Weights, payloadBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.c.Msg(w, payloadBytes)
}

// Add merges a privately accumulated delta into the counters in one
// critical section. Concurrent merge preparation charges its work into a
// local Counts and commits it here at admission, so the hot prepare path
// never contends on the counter lock.
func (c *Counters) Add(delta Counts) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.c.Add(delta)
}

// Update runs f on the underlying counts under the lock; use it for
// multi-field updates.
func (c *Counters) Update(f func(c *Counts)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f(&c.c)
}

// Snapshot returns a copy of the current counts.
func (c *Counters) Snapshot() Counts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.c
}

// Weighted converts the current counts into cost units.
func (c *Counters) Weighted(w Weights) Report { return c.Snapshot().Weighted(w) }

// Report is the weighted cost breakdown of a counter snapshot.
type Report struct {
	Comm, BaseCompute, MobileCompute int64
}

// Total returns the sum of the three components.
func (r Report) Total() int64 { return r.Comm + r.BaseCompute + r.MobileCompute }

// String renders the breakdown.
func (r Report) String() string {
	return fmt.Sprintf("comm=%d base=%d mobile=%d total=%d",
		r.Comm, r.BaseCompute, r.MobileCompute, r.Total())
}
