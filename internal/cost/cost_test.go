package cost

import (
	"strings"
	"sync"
	"testing"
)

func TestMsgAccounting(t *testing.T) {
	w := DefaultWeights()
	var c Counters
	c.Msg(w, 100)
	c.Msg(w, 0)
	s := c.Snapshot()
	if s.Messages != 2 {
		t.Errorf("messages = %d, want 2", s.Messages)
	}
	if want := 2*w.MsgOverheadBytes + 100; s.Bytes != want {
		t.Errorf("bytes = %d, want %d", s.Bytes, want)
	}
}

func TestWeightedBreakdown(t *testing.T) {
	w := Weights{
		PerByteCost:     2,
		QueryCost:       10,
		ForcedWriteCost: 100,
		RewriteOpCost:   3,
	}
	c := Counts{
		Bytes:            5,
		BaseQueries:      4,
		BaseForcedWrites: 2,
		MobileRewriteOps: 7,
	}
	r := c.Weighted(w)
	if r.Comm != 10 {
		t.Errorf("comm = %d, want 10", r.Comm)
	}
	if r.BaseCompute != 4*10+2*100 {
		t.Errorf("base = %d, want 240", r.BaseCompute)
	}
	if r.MobileCompute != 21 {
		t.Errorf("mobile = %d, want 21", r.MobileCompute)
	}
	if r.Total() != 10+240+21 {
		t.Errorf("total = %d", r.Total())
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{Messages: 1, TxnsSaved: 2, BaseLocks: 3}
	b := Counts{Messages: 10, TxnsSaved: 20, BaseLocks: 30, MergeFallbacks: 1}
	a.Add(b)
	if a.Messages != 11 || a.TxnsSaved != 22 || a.BaseLocks != 33 || a.MergeFallbacks != 1 {
		t.Errorf("Add result: %+v", a)
	}
}

func TestCountersConcurrentSafety(t *testing.T) {
	w := DefaultWeights()
	var c Counters
	var wg sync.WaitGroup
	const workers, rounds = 8, 200
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				c.Msg(w, 1)
				c.Update(func(cc *Counts) { cc.TxnsSaved++ })
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Messages != workers*rounds || s.TxnsSaved != workers*rounds {
		t.Errorf("lost updates: %+v", s)
	}
}

func TestStrings(t *testing.T) {
	c := Counts{Messages: 3, TxnsSaved: 5}
	if s := c.String(); !strings.Contains(s, "msgs=3") || !strings.Contains(s, "saved=5") {
		t.Errorf("String = %q", s)
	}
	r := Report{Comm: 1, BaseCompute: 2, MobileCompute: 3}
	if s := r.String(); !strings.Contains(s, "total=6") {
		t.Errorf("Report String = %q", s)
	}
}

func TestDefaultWeightsQualitativeShape(t *testing.T) {
	w := DefaultWeights()
	// The paper's qualitative relations: forced I/O dominates queries,
	// queries dominate locks, mobile graph/rewrite ops are cheap.
	if w.ForcedWriteCost <= w.QueryCost {
		t.Error("forced writes must cost more than query processing")
	}
	if w.QueryCost <= w.LockCost {
		t.Error("queries must cost more than lock operations")
	}
	if w.MobileGraphOpCost >= w.QueryCost {
		t.Error("mobile graph ops must be cheap relative to base queries")
	}
}
