package rewrite

import (
	"math/rand"

	"tiermerge/internal/expr"
	"tiermerge/internal/model"
	"tiermerge/internal/tx"
)

// StaticDetector decides can-precede by analyzing transaction profiles — the
// mode the paper prescribes for canned systems, where the relation between
// transaction *types* is pre-detected offline (Section 5.1). It is sound:
// when it answers true, t2 genuinely can precede t1^fix for every state and
// every fix-value assignment. It is conservative: unstructured profiles
// degrade to false.
//
// The detector enforces Property 1 by construction (its first two rules are
// exactly Property 1's conditions), so Algorithm 2 run with it satisfies the
// premises of Lemma 3 and Theorem 4.
type StaticDetector struct{}

var _ PrecedeDetector = StaticDetector{}

// Name implements PrecedeDetector.
func (StaticDetector) Name() string { return "static" }

// CanPrecede implements PrecedeDetector. The rules, for each data item z:
//
//   - z written by t2 only: t1 must not generally read z unless z is pinned
//     by the fix (Property 1, first condition, refined by fixes as in the
//     Theorem 4 proof);
//   - z written by t1 only: t2 must not generally read z (Property 1,
//     second condition — t2 carries no fix);
//   - z written by both: both transactions' updates of z must be additive
//     (x := x + δ), in which case the two deltas commute; a general read of
//     a shared item by either side is order-dependent and rejects.
//
// "Generally read" means read anywhere except as the additive base of the
// item's own update (the base read is what makes additive updates commute).
func (StaticDetector) CanPrecede(t2, t1 *tx.Transaction, fix tx.Fix) bool {
	if t1.HasBlindWrites() || t2.HasBlindWrites() {
		return false
	}
	fixItems := fix.Items()
	u1, u2 := usageOf(t1), usageOf(t2)
	if !fixItems.Disjoint(u1.writes) {
		// Fixes produced by the rewriting algorithms never pin written
		// items (Lemma 4's precondition); refuse odd inputs.
		return false
	}
	items := u1.all().Union(u2.all())
	for z := range items {
		w1, w2 := u1.writes.Has(z), u2.writes.Has(z)
		switch {
		case w1 && w2:
			if !u1.additive.Has(z) || !u2.additive.Has(z) {
				return false
			}
			if u1.general.Has(z) || u2.general.Has(z) {
				return false
			}
		case w2: // t2 writes z, t1 does not
			if u1.general.Has(z) && !fixItems.Has(z) {
				return false
			}
		case w1: // t1 writes z, t2 does not
			if u2.general.Has(z) {
				return false
			}
		}
	}
	return true
}

// usage summarizes how a profile touches items.
type usage struct {
	writes   model.ItemSet // items updated on some path
	additive model.ItemSet // items whose every update (on every path) is additive
	general  model.ItemSet // items with a value-sensitive read outside their own additive base
}

func (u usage) all() model.ItemSet {
	return u.writes.Union(u.general).Union(u.additive)
}

// usageOf classifies every item access of the profile.
func usageOf(t *tx.Transaction) usage {
	u := usage{
		writes:   make(model.ItemSet),
		additive: make(model.ItemSet),
		general:  make(model.ItemSet),
	}
	nonAdditive := make(model.ItemSet)
	classifyStmts(t.Body, &u, nonAdditive)
	for z := range nonAdditive {
		delete(u.additive, z)
	}
	return u
}

//tiermerge:sink
func classifyStmts(body []tx.Stmt, u *usage, nonAdditive model.ItemSet) {
	for _, s := range body {
		switch st := s.(type) {
		case *tx.ReadStmt:
			// A bare read binds a local value with no state effect; it does
			// not constrain commutation of final states.
		case *tx.UpdateStmt:
			u.writes.Add(st.Item)
			a := expr.Analyze(st.Expr, st.Item)
			switch a.Shape {
			case expr.ShapeAdditive:
				u.additive.Add(st.Item)
				// δ's operands are value-sensitive reads.
				for z := range expr.ItemsOf(a.Delta) {
					u.general.Add(z)
				}
			case expr.ShapeAssign:
				nonAdditive.Add(st.Item)
				for z := range expr.ItemsOf(st.Expr) {
					u.general.Add(z)
				}
			default:
				nonAdditive.Add(st.Item)
				// The base value of x matters non-additively.
				u.general.Add(st.Item)
				for z := range expr.ItemsOf(st.Expr) {
					u.general.Add(z)
				}
			}
		case *tx.AssignStmt:
			u.writes.Add(st.Item)
			nonAdditive.Add(st.Item)
			for z := range expr.ItemsOf(st.Expr) {
				u.general.Add(z)
			}
		case *tx.IfStmt:
			for z := range expr.PredItemsOf(st.Cond) {
				u.general.Add(z)
			}
			classifyStmts(st.Then, u, nonAdditive)
			classifyStmts(st.Else, u, nonAdditive)
		}
	}
}

// DynamicDetector decides can-precede by randomized semantic testing: it
// samples states and fix-value assignments, executes t1^fix t2 and t2 t1^fix
// and compares final states. This is the "detected at the time of repair"
// mode the paper describes for non-canned systems whose transaction code is
// recorded in the log (Section 5.1). It is probabilistic — a relation can be
// claimed that a rare state would refute — so production deployments use it
// behind the sound StaticDetector, and the test suite uses it to cross-check
// the static rules.
type DynamicDetector struct {
	// Rng drives state sampling. Must be non-nil.
	Rng *rand.Rand
	// Samples is the number of random states tried (default 64).
	Samples int
	// ValueRange bounds sampled magnitudes (default 1000).
	ValueRange int64
}

var _ PrecedeDetector = (*DynamicDetector)(nil)

// Name implements PrecedeDetector.
func (*DynamicDetector) Name() string { return "dynamic" }

// CanPrecede implements PrecedeDetector.
func (d *DynamicDetector) CanPrecede(t2, t1 *tx.Transaction, fix tx.Fix) bool {
	samples := d.Samples
	if samples == 0 {
		samples = 64
	}
	vr := d.ValueRange
	if vr == 0 {
		vr = 1000
	}
	items := statesOverlap(t1, t2)
	for it := range fix.Items() {
		items.Add(it)
	}
	valid := 0
	for i := 0; i < samples; i++ {
		s := model.NewState()
		for it := range items {
			s.Set(it, model.Value(d.Rng.Int63n(2*vr+1)-vr))
		}
		// Definition 4 quantifies over every assignment to the fixed
		// variables, not just the recorded one: resample them.
		f := fix.Clone()
		for it := range f {
			f[it] = model.Value(d.Rng.Int63n(2*vr+1) - vr)
		}
		s1, _, err1 := t1.Exec(s, f)
		if err1 != nil {
			continue // t1^F not defined on s: vacuous sample
		}
		s12, _, err2 := t2.Exec(s1, nil)
		if err2 != nil {
			continue // t1^F t2 not defined on s: vacuous sample
		}
		// Both conditions of Definition 4: t2 t1^F must be defined and
		// produce the same final state.
		s2, _, err3 := t2.Exec(s, nil)
		if err3 != nil {
			return false
		}
		s21, _, err4 := t1.Exec(s2, f)
		if err4 != nil {
			return false
		}
		if !s12.Equal(s21) {
			return false
		}
		valid++
	}
	return valid > 0
}
