package rewrite

import (
	"strings"
	"testing"

	"tiermerge/internal/history"
	"tiermerge/internal/papertest"
)

// TestBlockedExplainsH4 checks the tracing on the paper's H4: under
// Algorithm 1, G3 stays behind B1 because it reads x, which B1 writes.
func TestBlockedExplainsH4(t *testing.T) {
	h := papertest.NewH4()
	a, err := history.Run(history.New(h.Txns()...), h.Origin)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Algorithm1(a, map[int]bool{0: true})
	if err != nil {
		t.Fatal(err)
	}
	b, ok := res.Blocked[2] // G3's original position
	if !ok {
		t.Fatalf("no block reason for G3: %v", res.Blocked)
	}
	if b.Blocker != "B1" || !b.ReadItems.Has("x") {
		t.Errorf("G3 block = %+v, want blocked by B1 on x", b)
	}
	if b.PrecedeTried {
		t.Error("Algorithm 1 must not claim a can-precede attempt")
	}
	lines := res.ExplainIDs()
	if len(lines) != 1 || !strings.Contains(lines[0], "G3") || !strings.Contains(lines[0], "B1") {
		t.Errorf("ExplainIDs = %v", lines)
	}

	// Under Algorithm 2 the move succeeds: no block entry for G3.
	res2, err := Algorithm2(a, map[int]bool{0: true}, StaticDetector{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res2.Blocked[2]; ok {
		t.Error("Algorithm 2 blocked G3 despite can-precede")
	}
	// Saved transactions never appear in Blocked; bad ones neither.
	for pos := range res2.Blocked {
		if res2.Bad[pos] {
			t.Errorf("bad transaction %d has a block reason", pos)
		}
	}
}

// TestBlockedMarksPrecedeAttempts: Algorithm 2 records that the semantic
// fallback also failed.
func TestBlockedMarksPrecedeAttempts(t *testing.T) {
	h := papertest.NewH5()
	a, err := history.Run(history.New(h.T1, h.T2, h.T3), h.Origin)
	if err != nil {
		t.Fatal(err)
	}
	// Back out T1; T3 shares x with T1 non-additively, so even Algorithm 2
	// cannot move it.
	res, err := Algorithm2(a, map[int]bool{0: true}, StaticDetector{})
	if err != nil {
		t.Fatal(err)
	}
	b, ok := res.Blocked[2]
	if !ok {
		t.Fatalf("T3 not blocked: saved %v", res.SavedIDs())
	}
	if !b.PrecedeTried {
		t.Error("block reason must note the failed can-precede attempt")
	}
	if b.Blocker != "T1" {
		t.Errorf("blocker = %s, want T1", b.Blocker)
	}
}
