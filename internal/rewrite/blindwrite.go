package rewrite

import (
	"fmt"

	"tiermerge/internal/history"
	"tiermerge/internal/tx"
)

// This file implements the adaptation the paper mentions but does not
// present: "Although the rewriting approach can be adapted to blind writes,
// doing so complicates the presentation" (Section 3). The complication is
// that write sets are no longer contained in read sets, so the can-follow
// test must rule out write-write collisions explicitly:
//
//	blk can follow t  iff  blk.writeset ∩ t.readset  = ∅
//	                  and  blk.writeset ∩ t.writeset = ∅
//
// Without blind writes the second conjunct is implied by the first (t reads
// everything it writes), so CanFollowBW degenerates to Definition 3 exactly.
//
// The saved set changes accordingly: a good transaction stays in the tail
// iff some tail member writes an item it reads (a reads-from dependency) or
// writes an item it also writes (an overwrite collision: swapping would flip
// which value survives). The prefix therefore equals G minus the transitive
// closure of the reads-from-or-overwrite relation — a subset of what the
// closure back-out saves, because a blind overwrite of a bad transaction's
// item does not *read* from it and the closure approach can keep it:
//
//	saved(Algorithm1BW) ⊆ saved(ClosureBackout)    with blind writes,
//	saved(Algorithm1BW) = saved(Algorithm1)        without.
//
// What the rewriting buys over the closure in exchange is the extended
// history H_e: the tail keeps executable, fix-decorated entries, so pruning
// can run by undo (and by compensation where inverses exist) instead of by
// log-value restoration, and the repaired history remains a prefix of a
// final-state-equivalent whole (Definition 2).

// CanFollowBW is the blind-write-safe can-follow test.
func CanFollowBW(blk, t *tx.Effect) bool {
	return blk.WriteSet.Disjoint(t.ReadSet) && blk.WriteSet.Disjoint(t.WriteSet)
}

// Algorithm1BW is can-follow rewriting generalized to histories containing
// blind writes. On blind-write-free histories it produces exactly
// Algorithm 1's result.
func Algorithm1BW(a *history.Augmented, bad map[int]bool) (*Result, error) {
	return rewriteWithBW("can-follow-bw", a, bad, func(t, blk *entry) bool {
		if !CanFollowBW(blk.eff, t.eff) {
			return false
		}
		mergeFixIncrement(t, blk)
		return true
	}, func(t, blk *entry) Block { return explainBlock(t, blk, false, true) })
}

// rewriteWithBW is rewriteWith minus the blind-write rejection.
func rewriteWithBW(name string, a *history.Augmented, bad map[int]bool, rule moveRule, explain explainFn) (*Result, error) {
	n := a.H.Len()
	for i := 0; i < n; i++ {
		if !a.H.Entries[i].Fix.IsEmpty() {
			return nil, fmt.Errorf("rewrite: original history has non-empty fix at %d", i)
		}
	}
	head := make([]entry, 0, n)
	// The working arrangement is double-buffered: each candidate move is
	// trial-run against a scratch copy of the tail, and on success the two
	// buffers swap roles. Both backing arrays are preallocated at n, so the
	// O(n²) scan performs no per-candidate slice allocation (fix clones
	// still allocate, but only for tail members carrying non-empty fixes).
	tail := make([]entry, 0, n)
	scratch := make([]entry, 0, n)
	blocked := make(map[int]Block)
	pairChecks := 0
	for i := 0; i < n; i++ {
		ent := entry{orig: i, e: history.Entry{T: a.H.Txn(i)}, eff: a.Effects[i]}
		if len(tail) == 0 && !bad[i] {
			head = append(head, ent)
			continue
		}
		if bad[i] {
			tail = append(tail, ent)
			continue
		}
		tailCopy := append(scratch[:0], tail...)
		for j := range tailCopy {
			tailCopy[j].e.Fix = tail[j].e.Fix.Clone()
		}
		movable := true
		for j := len(tailCopy) - 1; j >= 0; j-- {
			pairChecks++
			if !rule(&ent, &tailCopy[j]) {
				movable = false
				if explain != nil {
					blocked[ent.orig] = explain(&ent, &tailCopy[j])
				}
				break
			}
		}
		if movable {
			head = append(head, ent)
			tail, scratch = tailCopy, tail
		} else {
			tail = append(tail, ent)
		}
	}
	res := &Result{
		Original:   a,
		Rewritten:  &history.History{},
		PrefixLen:  len(head),
		Bad:        bad,
		Affected:   history.AffectedSet(a, bad),
		Blocked:    blocked,
		PairChecks: pairChecks,
		Algorithm:  name,
	}
	for _, ent := range append(head, tail...) {
		res.Rewritten.Entries = append(res.Rewritten.Entries, ent.e)
		res.OrigPos = append(res.OrigPos, ent.orig)
	}
	return res, nil
}
