package rewrite

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"tiermerge/internal/expr"
	"tiermerge/internal/model"
	"tiermerge/internal/tx"
)

// CachedDetector implements the paper's canned-system mode: "since
// transactions are of limited number of types and the code of each
// transaction type is available, the can precede relation between two
// transactions can be pre-detected by detecting the relation between the
// corresponding two transaction types in advance" (Section 5.1).
//
// Rather than an offline table, the detector memoizes its inner detector's
// verdicts keyed by the *type-pair instance shape*: the two canned type
// names plus a canonical renaming of the data items each profile touches
// and of the fixed items. Two queries with the same key are guaranteed the
// same answer because the static analysis depends only on the profiles'
// structure and item-coincidence pattern, never on parameter values or on
// the fix's concrete values (Definition 4 quantifies over those).
//
// Caching assumes the canned-system contract the paper assumes: equal Type
// names imply equal code shape modulo item bindings. Ad-hoc transactions
// (empty Type) are never cached.
//
// The memo table is sharded by key hash with per-shard read/write locks and
// atomic hit/miss counters, so concurrent Algorithm-2 rewrites (many merge
// prepare phases sharing one detector) neither serialize on a single lock
// nor contend on hot keys: the steady-state hit path is a shared read lock
// on 1/cacheShards of the table.
type CachedDetector struct {
	// Inner produces verdicts on cache misses (default StaticDetector).
	Inner PrecedeDetector

	shards [cacheShards]cacheShard
	hits   atomic.Int64
	misses atomic.Int64
}

// cacheShards is the memo-table shard count (a power of two so the hash
// masks cheaply).
const cacheShards = 16

// cacheShard is one lock-striped slice of the memo table.
type cacheShard struct {
	mu sync.RWMutex
	m  map[string]bool
}

var _ PrecedeDetector = (*CachedDetector)(nil)

// NewCachedDetector wraps inner with the type-pair cache.
func NewCachedDetector(inner PrecedeDetector) *CachedDetector {
	if inner == nil {
		inner = StaticDetector{}
	}
	c := &CachedDetector{Inner: inner}
	for i := range c.shards {
		c.shards[i].m = make(map[string]bool)
	}
	return c
}

// Name implements PrecedeDetector.
func (c *CachedDetector) Name() string { return "cached(" + c.Inner.Name() + ")" }

// Stats returns the cache hit/miss counters.
func (c *CachedDetector) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// shardFor picks the shard by FNV-1a hash of the key.
func (c *CachedDetector) shardFor(key string) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h&(cacheShards-1)]
}

// CanPrecede implements PrecedeDetector.
func (c *CachedDetector) CanPrecede(t2, t1 *tx.Transaction, fix tx.Fix) bool {
	if t1.Type == "" || t2.Type == "" {
		return c.Inner.CanPrecede(t2, t1, fix)
	}
	key := pairKey(t2, t1, fix)
	sh := c.shardFor(key)
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return v
	}
	v = c.Inner.CanPrecede(t2, t1, fix)
	c.misses.Add(1)
	sh.mu.Lock()
	sh.m[key] = v
	sh.mu.Unlock()
	return v
}

// pairKey canonicalizes the type-pair instance: items are renamed to dense
// indices in first-occurrence order over (t2's body items, t1's body items,
// sorted fix items), so any item-consistent renaming of the same type pair
// produces the same key.
func pairKey(t2, t1 *tx.Transaction, fix tx.Fix) string {
	rename := make(map[model.Item]int)
	assign := func(it model.Item) int {
		if id, ok := rename[it]; ok {
			return id
		}
		id := len(rename)
		rename[it] = id
		return id
	}
	var b strings.Builder
	b.WriteString(t2.Type)
	b.WriteByte('|')
	b.WriteString(t1.Type)
	b.WriteByte('|')
	for _, it := range itemsInBodyOrder(t2) {
		fmt.Fprintf(&b, "%d,", assign(it))
	}
	b.WriteByte('|')
	for _, it := range itemsInBodyOrder(t1) {
		fmt.Fprintf(&b, "%d,", assign(it))
	}
	b.WriteByte('|')
	fixItems := make([]model.Item, 0, len(fix))
	for it := range fix {
		fixItems = append(fixItems, it)
	}
	sort.Slice(fixItems, func(i, j int) bool { return fixItems[i] < fixItems[j] })
	for _, it := range fixItems {
		fmt.Fprintf(&b, "%d,", assign(it))
	}
	return b.String()
}

// itemsInBodyOrder lists every item a profile references, in deterministic
// body-walk order with duplicates preserved (the duplication pattern is
// part of the shape).
func itemsInBodyOrder(t *tx.Transaction) []model.Item {
	var out []model.Item
	var walkStmts func(body []tx.Stmt)
	addExpr := func(e expr.Expr) {
		// ItemsOf returns a set; order it deterministically.
		items := expr.ItemsOf(e).Items()
		out = append(out, items...)
	}
	walkStmts = func(body []tx.Stmt) {
		for _, s := range body {
			switch st := s.(type) {
			case *tx.ReadStmt:
				out = append(out, st.Item)
			case *tx.UpdateStmt:
				out = append(out, st.Item)
				addExpr(st.Expr)
			case *tx.AssignStmt:
				out = append(out, st.Item)
				addExpr(st.Expr)
			case *tx.IfStmt:
				out = append(out, expr.PredItemsOf(st.Cond).Items()...)
				walkStmts(st.Then)
				walkStmts(st.Else)
			}
		}
	}
	walkStmts(t.Body)
	return out
}
