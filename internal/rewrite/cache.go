package rewrite

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"tiermerge/internal/expr"
	"tiermerge/internal/model"
	"tiermerge/internal/tx"
)

// CachedDetector implements the paper's canned-system mode: "since
// transactions are of limited number of types and the code of each
// transaction type is available, the can precede relation between two
// transactions can be pre-detected by detecting the relation between the
// corresponding two transaction types in advance" (Section 5.1).
//
// Rather than an offline table, the detector memoizes its inner detector's
// verdicts keyed by the *type-pair instance shape*: the two canned type
// names plus the full body shape of each profile — statement opcodes,
// operator structure, constants and parameter names — under a canonical
// renaming of the data items the profiles and the fix touch. Two queries
// with the same key are guaranteed the same answer because the static
// analysis depends only on that structure and item-coincidence pattern,
// never on parameter values or on the fix's concrete values (Definition 4
// quantifies over those). Keying on the full shape rather than the item
// sequence alone means two profiles that touch the same items through
// different code (an additive vs a multiplicative update, say) can never
// share a memo slot, even if their Type names collide.
//
// Under the canned-system contract the paper assumes — equal Type names
// imply equal code shape modulo item bindings — instances of the same type
// pair still coalesce onto one key. Ad-hoc transactions (empty Type) are
// never cached.
//
// The memo table is sharded by key hash with per-shard read/write locks and
// atomic hit/miss counters, so concurrent Algorithm-2 rewrites (many merge
// prepare phases sharing one detector) neither serialize on a single lock
// nor contend on hot keys: the steady-state hit path is a shared read lock
// on 1/cacheShards of the table.
type CachedDetector struct {
	// Inner produces verdicts on cache misses (default StaticDetector).
	Inner PrecedeDetector

	shards [cacheShards]cacheShard
	hits   atomic.Int64
	misses atomic.Int64
}

// cacheShards is the memo-table shard count (a power of two so the hash
// masks cheaply).
const cacheShards = 16

// cacheShard is one lock-striped slice of the memo table.
type cacheShard struct {
	mu sync.RWMutex
	m  map[string]bool
}

var _ PrecedeDetector = (*CachedDetector)(nil)

// NewCachedDetector wraps inner with the type-pair cache.
func NewCachedDetector(inner PrecedeDetector) *CachedDetector {
	if inner == nil {
		inner = StaticDetector{}
	}
	c := &CachedDetector{Inner: inner}
	for i := range c.shards {
		c.shards[i].m = make(map[string]bool)
	}
	return c
}

// Name implements PrecedeDetector.
func (c *CachedDetector) Name() string { return "cached(" + c.Inner.Name() + ")" }

// Stats returns the cache hit/miss counters.
func (c *CachedDetector) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// shardFor picks the shard by FNV-1a hash of the key.
func (c *CachedDetector) shardFor(key string) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h&(cacheShards-1)]
}

// CanPrecede implements PrecedeDetector.
func (c *CachedDetector) CanPrecede(t2, t1 *tx.Transaction, fix tx.Fix) bool {
	if t1.Type == "" || t2.Type == "" {
		return c.Inner.CanPrecede(t2, t1, fix)
	}
	key := pairKey(t2, t1, fix)
	sh := c.shardFor(key)
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return v
	}
	v = c.Inner.CanPrecede(t2, t1, fix)
	c.misses.Add(1)
	sh.mu.Lock()
	sh.m[key] = v
	sh.mu.Unlock()
	return v
}

// pairKey canonicalizes the type-pair instance: the two type names, the
// full body shape of each profile (statement opcodes, operator structure,
// constants, parameter names — see expr.WriteShape), and the fix's item
// set, with every item renamed to a dense index in first-occurrence order
// over (t2's body, t1's body, sorted fix items). Any item-consistent
// renaming of the same code produces the same key, and — unlike keying on
// the item sequence alone — two profiles that touch the same items through
// different code (a += $amt vs a *= $f) can never collide: the static
// analysis reads exactly the structure the shape serializes, nothing more.
//
// The fix contributes only its item indices: Definition 4 quantifies over
// the fixed values, so the verdict cannot depend on them.
func pairKey(t2, t1 *tx.Transaction, fix tx.Fix) string {
	rename := make(map[model.Item]int)
	assign := func(it model.Item) int {
		if id, ok := rename[it]; ok {
			return id
		}
		id := len(rename)
		rename[it] = id
		return id
	}
	var b strings.Builder
	b.WriteString(t2.Type)
	b.WriteByte('|')
	b.WriteString(t1.Type)
	b.WriteByte('|')
	writeBodyShape(&b, t2, assign)
	b.WriteByte('|')
	writeBodyShape(&b, t1, assign)
	b.WriteByte('|')
	fixItems := make([]model.Item, 0, len(fix))
	for it := range fix {
		fixItems = append(fixItems, it)
	}
	sort.Slice(fixItems, func(i, j int) bool { return fixItems[i] < fixItems[j] })
	for _, it := range fixItems {
		fmt.Fprintf(&b, "%d,", assign(it))
	}
	return b.String()
}

// writeBodyShape appends the canonical shape of a profile body: one token
// per statement in body-walk order, items renamed through assign,
// expressions and predicates serialized by the expr shape writers.
func writeBodyShape(b *strings.Builder, t *tx.Transaction, assign func(model.Item) int) {
	var walkStmts func(body []tx.Stmt)
	walkStmts = func(body []tx.Stmt) {
		for _, s := range body {
			switch st := s.(type) {
			case *tx.ReadStmt:
				fmt.Fprintf(b, "r%d;", assign(st.Item))
			case *tx.UpdateStmt:
				fmt.Fprintf(b, "u%d=", assign(st.Item))
				expr.WriteShape(b, st.Expr, assign)
				b.WriteByte(';')
			case *tx.AssignStmt:
				fmt.Fprintf(b, "a%d=", assign(st.Item))
				expr.WriteShape(b, st.Expr, assign)
				b.WriteByte(';')
			case *tx.IfStmt:
				b.WriteString("if(")
				expr.WritePredShape(b, st.Cond, assign)
				b.WriteString("){")
				walkStmts(st.Then)
				b.WriteString("}else{")
				walkStmts(st.Else)
				b.WriteString("};")
			default:
				// Unknown statement kind: identify it by type, keeping keys
				// distinct (conservative misses, never conflation).
				fmt.Fprintf(b, "?%T;", s)
			}
		}
	}
	walkStmts(t.Body)
}
