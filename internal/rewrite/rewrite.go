// Package rewrite implements the paper's rewriting model (Section 3) and
// rewriting algorithms (Sections 4 and 5):
//
//   - can-follow rewriting (Algorithm 1), which moves every transaction in
//     G−AG in front of the bad block while keeping the rewritten history
//     final-state equivalent to the original by maintaining fixes (Lemma 1,
//     with the Lemma 2 readset−writeset shortcut);
//   - can-follow + can-precede rewriting (Algorithm 2), which additionally
//     exploits transaction semantics (commutativity in the presence of
//     fixes, Definition 4) to save affected transactions as well;
//   - commutes-backward-through rewriting (CBTR), the pure-commutativity
//     baseline of Theorem 4;
//   - the reads-from transitive-closure back-out (the Davidson baseline of
//     Theorem 3).
package rewrite

import (
	"errors"
	"fmt"
	"sort"

	"tiermerge/internal/history"
	"tiermerge/internal/model"
	"tiermerge/internal/tx"
)

// ErrBlindWrites is returned when a history contains blind writes; the
// rewriting model of Section 3 assumes they are absent.
var ErrBlindWrites = errors.New("rewrite: history contains blind writes")

// Result is the outcome of rewriting a tentative history against a bad set.
type Result struct {
	// Original is the augmented history the rewrite started from.
	Original *history.Augmented
	// Rewritten is H_e: the full rewritten history with fixes. Its first
	// PrefixLen entries form the repaired history H_r.
	Rewritten *history.History
	// PrefixLen is |H_r|, the number of saved transactions.
	PrefixLen int
	// OrigPos maps each rewritten position to the transaction's position in
	// the original history.
	OrigPos []int
	// Bad is the input back-out set as original positions.
	Bad map[int]bool
	// Affected is AG: the reads-from closure of Bad in the original history
	// (original positions), computed for reporting and for Theorem 3 checks.
	Affected map[int]bool
	// Blocked explains, for each good transaction left in the tail (by
	// original position), which blocker stopped its move and why.
	Blocked map[int]Block
	// PairChecks counts the pairwise move tests performed — the actual
	// work behind the O(n²) bound Section 7.1 quotes; the cost model
	// charges it as MobileRewriteOps.
	PairChecks int
	// Algorithm names the rewriter that produced the result.
	Algorithm string
}

// Repaired returns H_r, the repaired prefix.
func (r *Result) Repaired() *history.History { return r.Rewritten.Prefix(r.PrefixLen) }

// SavedIDs returns the IDs of the saved (prefix) transactions in order.
func (r *Result) SavedIDs() []string { return r.Repaired().IDs() }

// SavedSet returns the saved transactions as a set of IDs — the FPR/CBTR
// sets of Theorem 4.
func (r *Result) SavedSet() map[string]bool {
	s := make(map[string]bool, r.PrefixLen)
	for _, id := range r.SavedIDs() {
		s[id] = true
	}
	return s
}

// entry is one position of the working arrangement during a rewrite.
type entry struct {
	orig int
	e    history.Entry
	eff  *tx.Effect
}

// moveRule decides whether the scanned good transaction t may be pushed left
// past blocked transaction blk, and applies any fix bookkeeping to blk.
// Returns false to leave t in place.
type moveRule func(t *entry, blk *entry) bool

// rewriteWith is the shared skeleton of Algorithms 1, 2 and CBTR: scan
// forward from the first good transaction after B1; leave bad transactions
// in the tail; move a good transaction in front of B1 when rule allows it
// past every transaction currently between B1 and it. The blind-write
// rejection implements the Section 3 model assumption; Algorithm1BW
// (blindwrite.go) provides the generalized variant.
func rewriteWith(name string, a *history.Augmented, bad map[int]bool, rule moveRule, explain explainFn) (*Result, error) {
	for i := 0; i < a.H.Len(); i++ {
		if a.H.Txn(i).HasBlindWrites() {
			return nil, fmt.Errorf("%w: %s", ErrBlindWrites, a.H.Txn(i).ID)
		}
	}
	return rewriteWithBW(name, a, bad, rule, explain)
}

// explainFn derives the diagnostic Block for a failed move of t past blk.
type explainFn func(t, blk *entry) Block

// CanFollow is Definition 3 specialized to one blocked transaction: blk can
// follow t iff blk writes nothing t reads. (Property 4 of the definition —
// T can follow a sequence iff it can follow every member — lets the
// algorithms test the block member-by-member.)
func CanFollow(blk, t *tx.Effect) bool {
	return blk.WriteSet.Disjoint(t.ReadSet)
}

// mergeFixIncrement applies the Lemma 1 fix update for pushing t left past
// blk: blk's fix gains the values blk originally read for the items t
// writes. When blk read nothing t writes the increment is empty, so the
// FixFor/Merge round-trip (two map allocations per pair check on the O(n²)
// hot path) is skipped outright.
func mergeFixIncrement(t, blk *entry) {
	if blk.eff.ReadSet.Disjoint(t.eff.WriteSet) {
		return
	}
	inc := blk.eff.FixFor(blk.eff.ReadSet.Intersect(t.eff.WriteSet))
	blk.e.Fix = blk.e.Fix.Merge(inc)
}

// Algorithm1 is the paper's can-follow rewriting. The produced prefix holds
// exactly G−AG (Theorem 2/3); every blocked transaction carries the fix
// accumulated by Lemma 1.
func Algorithm1(a *history.Augmented, bad map[int]bool) (*Result, error) {
	return rewriteWith("can-follow", a, bad, func(t, blk *entry) bool {
		if !CanFollow(blk.eff, t.eff) {
			return false
		}
		mergeFixIncrement(t, blk)
		return true
	}, func(t, blk *entry) Block { return explainBlock(t, blk, false, false) })
}

// PrecedeDetector decides the can-precede relation of Definition 4: t2 can
// precede t1 under fix: for every assignment of values to the fixed
// variables and every state on which t1^fix t2 is defined, t2 t1^fix is
// defined and produces the same final state.
type PrecedeDetector interface {
	// CanPrecede reports whether t2 can precede t1^fix.
	CanPrecede(t2, t1 *tx.Transaction, fix tx.Fix) bool
	// Name identifies the detector in reports.
	Name() string
}

// Algorithm2 is the paper's can-follow and can-precede rewriting: a good
// transaction moves left past a blocked transaction either syntactically
// (can follow, with the Lemma 1 fix update) or semantically (can precede,
// no fix change). With a Property 1-respecting detector, the saved set is a
// superset of CBTR's (Theorem 4).
func Algorithm2(a *history.Augmented, bad map[int]bool, det PrecedeDetector) (*Result, error) {
	return rewriteWith("can-follow+can-precede", a, bad, func(t, blk *entry) bool {
		if CanFollow(blk.eff, t.eff) {
			mergeFixIncrement(t, blk)
			return true
		}
		return det.CanPrecede(t.e.T, blk.e.T, blk.e.Fix)
	}, func(t, blk *entry) Block { return explainBlock(t, blk, true, false) })
}

// CBTR is the rewriting algorithm based purely on commutes backward through:
// Algorithm 1 with can-follow replaced by the commutativity test and no fix
// maintenance (swapping commuting transactions preserves all downstream
// states directly). It is the comparison baseline of Theorem 4.
func CBTR(a *history.Augmented, bad map[int]bool, det PrecedeDetector) (*Result, error) {
	return rewriteWith("commutes-backward-through", a, bad, func(t, blk *entry) bool {
		return det.CanPrecede(t.e.T, blk.e.T, nil)
	}, func(t, blk *entry) Block { return explainBlock(t, blk, true, false) })
}

// ClosureBackout is the reads-from transitive-closure approach of
// [Dav84]: discard B ∪ AG outright and keep G−AG in original order. It
// returns the surviving history (the Theorem 3 baseline H_r) plus the
// affected set.
func ClosureBackout(a *history.Augmented, bad map[int]bool) (*history.History, map[int]bool) {
	affected := history.AffectedSet(a, bad)
	kept := &history.History{}
	for i := 0; i < a.H.Len(); i++ {
		if !bad[i] && !affected[i] {
			kept.Append(a.H.Txn(i))
		}
	}
	return kept, affected
}

// ApplyLemma2Fixes returns a copy of the rewritten history in which every
// non-empty fix F_i is replaced by F'_i = readset_i − writeset_i with the
// originally read values (Lemma 2). The replacement history is final-state
// equivalent to the input for Algorithm 1 results, and for Algorithm 2
// results when the system has Property 1 (Lemma 3).
func ApplyLemma2Fixes(r *Result) *history.History {
	out := r.Rewritten.Clone()
	for i := range out.Entries {
		if out.Entries[i].Fix.IsEmpty() {
			continue
		}
		eff := r.Original.Effects[r.OrigPos[i]]
		want := eff.ReadSet.Minus(eff.WriteSet)
		out.Entries[i].Fix = eff.FixFor(want)
	}
	return out
}

// BadIDs converts a bad-position set into sorted transaction IDs, for
// reports.
func BadIDs(a *history.Augmented, bad map[int]bool) []string {
	pos := make([]int, 0, len(bad))
	for p := range bad {
		pos = append(pos, p)
	}
	sort.Ints(pos)
	ids := make([]string, len(pos))
	for i, p := range pos {
		ids[i] = a.H.Txn(p).ID
	}
	return ids
}

// statesOverlap is a tiny helper used by tests and detectors to build states
// covering the items two transactions touch.
func statesOverlap(ts ...*tx.Transaction) model.ItemSet {
	s := make(model.ItemSet)
	for _, t := range ts {
		for it := range t.StaticReadSet() {
			s.Add(it)
		}
		for it := range t.StaticWriteSet() {
			s.Add(it)
		}
	}
	return s
}
