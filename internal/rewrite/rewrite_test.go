package rewrite

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"tiermerge/internal/expr"
	"tiermerge/internal/history"
	"tiermerge/internal/model"
	"tiermerge/internal/papertest"
	"tiermerge/internal/tx"
	"tiermerge/internal/workload"
)

func runH(t *testing.T, s0 model.State, txns ...*tx.Transaction) *history.Augmented {
	t.Helper()
	a, err := history.Run(history.New(txns...), s0)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestH4Algorithm1 reproduces Section 5.1: Algorithm 1 on H4 with B = {B1}
// yields G2 B1^{u} G3 — only G2 is saved, and B1 carries fix {u}.
func TestH4Algorithm1(t *testing.T) {
	h := papertest.NewH4()
	a := runH(t, h.Origin, h.Txns()...)
	res, err := Algorithm1(a, map[int]bool{0: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rewritten.IDs(); !reflect.DeepEqual(got, []string{"G2", "B1", "G3"}) {
		t.Fatalf("rewritten order = %v, want [G2 B1 G3]", got)
	}
	if got := res.SavedIDs(); !reflect.DeepEqual(got, []string{"G2"}) {
		t.Errorf("saved = %v, want [G2]", got)
	}
	fix := res.Rewritten.Entries[1].Fix
	if len(fix) != 1 || fix["u"] != 30 {
		t.Errorf("B1 fix = %v, want {u=30}", fix)
	}
	// G3 stays with an empty fix: nothing moved past it.
	if !res.Rewritten.Entries[2].Fix.IsEmpty() {
		t.Errorf("G3 fix = %v, want empty", res.Rewritten.Entries[2].Fix)
	}
	// The rewritten history is final state equivalent to H4 (Theorem 2.4).
	raug, err := history.Run(res.Rewritten, h.Origin)
	if err != nil {
		t.Fatal(err)
	}
	if !raug.Final().Equal(a.Final()) {
		t.Errorf("rewritten final %s != original %s", raug.Final(), a.Final())
	}
	// AG = {G3} (reads x from B1), and G2 keeps position before the block.
	if !res.Affected[2] || res.Affected[1] {
		t.Errorf("affected = %v, want {2}", res.Affected)
	}
}

// TestH4Algorithm2 reproduces the rest of the motivating example: Algorithm
// 2 additionally saves G3, producing the final-state-equivalent history
// G2 G3 B1^{u}.
func TestH4Algorithm2(t *testing.T) {
	h := papertest.NewH4()
	a := runH(t, h.Origin, h.Txns()...)
	res, err := Algorithm2(a, map[int]bool{0: true}, StaticDetector{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rewritten.IDs(); !reflect.DeepEqual(got, []string{"G2", "G3", "B1"}) {
		t.Fatalf("rewritten order = %v, want [G2 G3 B1]", got)
	}
	if got := res.SavedIDs(); !reflect.DeepEqual(got, []string{"G2", "G3"}) {
		t.Errorf("saved = %v, want [G2 G3]", got)
	}
	raug, err := history.Run(res.Rewritten, h.Origin)
	if err != nil {
		t.Fatal(err)
	}
	if !raug.Final().Equal(a.Final()) {
		t.Errorf("rewritten final %s != original %s", raug.Final(), a.Final())
	}
	// G3 moved with no fix of its own; prefix fixes are all empty
	// (Theorem 2 property 3 carries over to saved transactions).
	for i := 0; i < res.PrefixLen; i++ {
		if !res.Rewritten.Entries[i].Fix.IsEmpty() {
			t.Errorf("prefix entry %d has fix %v", i, res.Rewritten.Entries[i].Fix)
		}
	}
}

// TestH5FixBlocksCommutativity reproduces the paper's H5: T3 does not
// commute backward through T1^{y}, with the exact 190-vs-180 witness.
func TestH5FixBlocksCommutativity(t *testing.T) {
	h := papertest.NewH5()
	fix := tx.Fix{"y": 150}

	// The paper's witness, replayed concretely: start from x=100 and run
	// T2 first.
	s1, _, err := h.T2.Exec(h.Origin, nil) // y: 150 -> 250
	if err != nil {
		t.Fatal(err)
	}
	viaT1First, _, err := h.T1.Exec(s1, fix) // fix y=150 <= 200: x *= 2 -> 200
	if err != nil {
		t.Fatal(err)
	}
	viaT1First, _, err = h.T3.Exec(viaT1First, nil) // real y=250 > 200: x -= 10 -> 190
	if err != nil {
		t.Fatal(err)
	}
	if got := viaT1First.Get("x"); got != 190 {
		t.Errorf("T2 T1^F T3 final x = %d, want 190", got)
	}
	viaT3First, _, err := h.T3.Exec(s1, nil) // x: 100 -> 90
	if err != nil {
		t.Fatal(err)
	}
	viaT3First, _, err = h.T1.Exec(viaT3First, fix) // x: 90 -> 180
	if err != nil {
		t.Fatal(err)
	}
	if got := viaT3First.Get("x"); got != 180 {
		t.Errorf("T2 T3 T1^F final x = %d, want 180", got)
	}

	// Both detectors must therefore reject CanPrecede(T3, T1, {y}).
	if (StaticDetector{}).CanPrecede(h.T3, h.T1, fix) {
		t.Error("static detector claimed T3 can precede T1^{y}")
	}
	dyn := &DynamicDetector{Rng: rand.New(rand.NewSource(1)), Samples: 256}
	if dyn.CanPrecede(h.T3, h.T1, fix) {
		t.Error("dynamic detector claimed T3 can precede T1^{y}")
	}
}

// TestH4CanPrecedeDetectors checks both detectors accept the paper's
// positive case: G3 can precede B1^{u} for any value of u.
func TestH4CanPrecedeDetectors(t *testing.T) {
	h := papertest.NewH4()
	fix := tx.Fix{"u": 30}
	if !(StaticDetector{}).CanPrecede(h.G3, h.B1, fix) {
		t.Error("static detector rejected G3 can precede B1^{u}")
	}
	dyn := &DynamicDetector{Rng: rand.New(rand.NewSource(2)), Samples: 256}
	if !dyn.CanPrecede(h.G3, h.B1, fix) {
		t.Error("dynamic detector rejected G3 can precede B1^{u}")
	}
}

// TestSeparation demonstrates the strict ordering of the three rewriters on
// one history: closure/Alg1 save {G2}, CBTR saves nothing, Alg2 saves
// {G2, G3}.
func TestSeparation(t *testing.T) {
	h := papertest.NewSeparation()
	a := runH(t, h.Origin, h.Txns()...)
	bad := map[int]bool{0: true}

	kept, _ := ClosureBackout(a, bad)
	if got := kept.IDs(); !reflect.DeepEqual(got, []string{"G2"}) {
		t.Errorf("closure saved %v, want [G2]", got)
	}
	r1, err := Algorithm1(a, bad)
	if err != nil {
		t.Fatal(err)
	}
	if got := r1.SavedIDs(); !reflect.DeepEqual(got, []string{"G2"}) {
		t.Errorf("Algorithm 1 saved %v, want [G2]", got)
	}
	rc, err := CBTR(a, bad, StaticDetector{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rc.SavedIDs(); len(got) != 0 {
		t.Errorf("CBTR saved %v, want none", got)
	}
	r2, err := Algorithm2(a, bad, StaticDetector{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.SavedIDs(); !reflect.DeepEqual(got, []string{"G2", "G3"}) {
		t.Errorf("Algorithm 2 saved %v, want [G2 G3]", got)
	}
	// All rewrites stay final state equivalent.
	for _, res := range []*Result{r1, rc, r2} {
		raug, err := history.Run(res.Rewritten, h.Origin)
		if err != nil {
			t.Fatal(err)
		}
		if !raug.Final().Equal(a.Final()) {
			t.Errorf("%s: final %s != original %s", res.Algorithm, raug.Final(), a.Final())
		}
	}
}

// TestTheorem2Properties checks all four Theorem 2 guarantees on random
// histories: the prefix is exactly G−AG, relative orders are preserved,
// prefix fixes are empty, and the rewritten history is final state
// equivalent to the original.
func TestTheorem2Properties(t *testing.T) {
	gen := workload.NewGenerator(workload.Config{Seed: 11, Items: 10})
	origin := gen.OriginState()
	for trial := 0; trial < 150; trial++ {
		a, err := gen.RunHistory(tx.Tentative, 8, origin)
		if err != nil {
			t.Fatal(err)
		}
		bad := gen.RandomBadSet(8, 0.25)
		res, err := Algorithm1(a, bad)
		if err != nil {
			t.Fatal(err)
		}
		// (1) prefix = G − AG exactly.
		wantSaved := make(map[string]bool)
		for i := 0; i < a.H.Len(); i++ {
			if !bad[i] && !res.Affected[i] {
				wantSaved[a.H.Txn(i).ID] = true
			}
		}
		if got := res.SavedSet(); !reflect.DeepEqual(got, wantSaved) {
			t.Fatalf("trial %d: saved %v, want %v", trial, got, wantSaved)
		}
		// (2) relative order preserved within prefix and within tail.
		lastOrig := -1
		for i := 0; i < res.PrefixLen; i++ {
			if res.OrigPos[i] < lastOrig {
				t.Fatalf("trial %d: prefix order violated", trial)
			}
			lastOrig = res.OrigPos[i]
		}
		lastOrig = -1
		for i := res.PrefixLen; i < res.Rewritten.Len(); i++ {
			if res.OrigPos[i] < lastOrig {
				t.Fatalf("trial %d: tail order violated", trial)
			}
			lastOrig = res.OrigPos[i]
		}
		// (3) prefix fixes empty.
		for i := 0; i < res.PrefixLen; i++ {
			if !res.Rewritten.Entries[i].Fix.IsEmpty() {
				t.Fatalf("trial %d: prefix fix %v", trial, res.Rewritten.Entries[i].Fix)
			}
		}
		// (4) final state equivalence.
		raug, err := history.Run(res.Rewritten, origin)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !raug.Final().Equal(a.Final()) {
			t.Fatalf("trial %d: rewritten final %s != original %s",
				trial, raug.Final(), a.Final())
		}
	}
}

// TestTheorem3Equivalence checks Theorem 3 on random histories: the
// closure back-out survivors are exactly Algorithm 1's prefix, in order.
func TestTheorem3Equivalence(t *testing.T) {
	gen := workload.NewGenerator(workload.Config{Seed: 21, Items: 8})
	origin := gen.OriginState()
	for trial := 0; trial < 200; trial++ {
		a, err := gen.RunHistory(tx.Tentative, 10, origin)
		if err != nil {
			t.Fatal(err)
		}
		bad := gen.RandomBadSet(10, 0.2)
		kept, _ := ClosureBackout(a, bad)
		res, err := Algorithm1(a, bad)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(kept.IDs(), res.SavedIDs()) {
			t.Fatalf("trial %d: closure %v != Algorithm 1 prefix %v",
				trial, kept.IDs(), res.SavedIDs())
		}
	}
}

// TestTheorem4Subset checks CBTR(H) ⊆ FPR(H) on random histories, and that
// both rewriters remain final state equivalent.
func TestTheorem4Subset(t *testing.T) {
	gen := workload.NewGenerator(workload.Config{Seed: 31, Items: 8, PCommutative: 0.8})
	origin := gen.OriginState()
	for trial := 0; trial < 200; trial++ {
		a, err := gen.RunHistory(tx.Tentative, 10, origin)
		if err != nil {
			t.Fatal(err)
		}
		bad := gen.RandomBadSet(10, 0.2)
		fpr, err := Algorithm2(a, bad, StaticDetector{})
		if err != nil {
			t.Fatal(err)
		}
		cbtr, err := CBTR(a, bad, StaticDetector{})
		if err != nil {
			t.Fatal(err)
		}
		fprSet := fpr.SavedSet()
		for id := range cbtr.SavedSet() {
			if !fprSet[id] {
				t.Fatalf("trial %d: CBTR saved %s but Algorithm 2 did not (CBTR %v, FPR %v)",
					trial, id, cbtr.SavedIDs(), fpr.SavedIDs())
			}
		}
		// Algorithm 1's prefix is also contained in Algorithm 2's saved set.
		alg1, err := Algorithm1(a, bad)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range alg1.SavedIDs() {
			if !fprSet[id] {
				t.Fatalf("trial %d: Algorithm 1 saved %s but Algorithm 2 did not", trial, id)
			}
		}
		for _, res := range []*Result{fpr, cbtr} {
			raug, err := history.Run(res.Rewritten, origin)
			if err != nil {
				t.Fatalf("trial %d (%s): %v", trial, res.Algorithm, err)
			}
			if !raug.Final().Equal(a.Final()) {
				t.Fatalf("trial %d (%s): not final state equivalent", trial, res.Algorithm)
			}
		}
	}
}

// TestLemma2Fixes checks that replacing accumulated fixes with
// readset−writeset fixes preserves final state equivalence, for both
// algorithms (Lemma 2 and Lemma 3 — the static detector enforces
// Property 1).
func TestLemma2Fixes(t *testing.T) {
	gen := workload.NewGenerator(workload.Config{Seed: 41, Items: 8})
	origin := gen.OriginState()
	for trial := 0; trial < 150; trial++ {
		a, err := gen.RunHistory(tx.Tentative, 8, origin)
		if err != nil {
			t.Fatal(err)
		}
		bad := gen.RandomBadSet(8, 0.25)
		for _, mk := range []func() (*Result, error){
			func() (*Result, error) { return Algorithm1(a, bad) },
			func() (*Result, error) { return Algorithm2(a, bad, StaticDetector{}) },
		} {
			res, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			wide := ApplyLemma2Fixes(res)
			waug, err := history.Run(wide, origin)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !waug.Final().Equal(a.Final()) {
				t.Fatalf("trial %d (%s): Lemma 2 fixes broke equivalence", trial, res.Algorithm)
			}
		}
	}
}

// TestStaticDetectorSoundness cross-validates the static detector against
// exhaustive-ish randomized execution: whenever static says yes, the
// dynamic detector must not find a counterexample.
func TestStaticDetectorSoundness(t *testing.T) {
	gen := workload.NewGenerator(workload.Config{Seed: 51, Items: 5, PCommutative: 0.7})
	rng := rand.New(rand.NewSource(52))
	dyn := &DynamicDetector{Rng: rng, Samples: 128}
	claims := 0
	for trial := 0; trial < 400; trial++ {
		t1 := gen.Txn(tx.Tentative)
		t2 := gen.Txn(tx.Tentative)
		// Random fix over t1's read-only items.
		fix := tx.Fix{}
		ro := t1.StaticReadSet().Minus(t1.StaticWriteSet())
		for it := range ro {
			if rng.Intn(2) == 0 {
				fix[it] = model.Value(rng.Int63n(500))
			}
		}
		if (StaticDetector{}).CanPrecede(t2, t1, fix) {
			claims++
			if !dyn.CanPrecede(t2, t1, fix) {
				t.Fatalf("trial %d: static claimed %s can precede %s^%v; dynamic refuted\n t1=%s\n t2=%s",
					trial, t2.ID, t1.ID, fix, t1, t2)
			}
		}
	}
	if claims == 0 {
		t.Error("static detector never claimed can-precede; test vacuous")
	}
}

// TestCanFollowProperties checks the four properties listed under
// Definition 3.
func TestCanFollowProperties(t *testing.T) {
	mk := func(id string, body ...tx.Stmt) *tx.Effect {
		tr := tx.MustNew(id, tx.Tentative, body...)
		_, eff, err := tr.Exec(model.StateOf(map[model.Item]model.Value{"x": 1, "y": 2, "z": 3}), nil)
		if err != nil {
			t.Fatal(err)
		}
		return eff
	}
	writer := mk("w", tx.Update("x", expr.Add(expr.Var("x"), expr.Const(1))))
	reader := mk("r", tx.Read("x"), tx.Read("y"))
	other := mk("o", tx.Update("z", expr.Add(expr.Var("z"), expr.Const(1))))

	// (1) a writer cannot follow itself: its write set meets its own
	// read set (no blind writes).
	if CanFollow(writer, writer) {
		t.Error("writer can follow itself")
	}
	// (3) read-only transactions can follow any transaction.
	if !CanFollow(reader, writer) || !CanFollow(reader, other) {
		t.Error("read-only transaction cannot follow")
	}
	// Disjoint footprints can follow each other both ways.
	if !CanFollow(other, writer) || !CanFollow(writer, other) {
		t.Error("disjoint transactions cannot follow")
	}
	// writer cannot follow reader: writer writes x which reader read.
	if CanFollow(writer, reader) {
		t.Error("writer can follow a reader of its write set")
	}
}

func TestRewriteRejectsBlindWrites(t *testing.T) {
	blind := tx.MustNew("T1", tx.Tentative, tx.Assign("x", expr.Const(1)))
	a, err := history.Run(history.New(blind), model.NewState())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Algorithm1(a, map[int]bool{0: true}); !errors.Is(err, ErrBlindWrites) {
		t.Errorf("got %v, want ErrBlindWrites", err)
	}
}

func TestEmptyBadSetKeepsEverything(t *testing.T) {
	h := papertest.NewH4()
	a := runH(t, h.Origin, h.Txns()...)
	res, err := Algorithm1(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrefixLen != 3 {
		t.Errorf("prefix = %d, want all 3", res.PrefixLen)
	}
	if got := res.Rewritten.IDs(); !reflect.DeepEqual(got, []string{"B1", "G2", "G3"}) {
		t.Errorf("order changed: %v", got)
	}
}

func TestBadIDs(t *testing.T) {
	h := papertest.NewH4()
	a := runH(t, h.Origin, h.Txns()...)
	if got := BadIDs(a, map[int]bool{2: true, 0: true}); !reflect.DeepEqual(got, []string{"B1", "G3"}) {
		t.Errorf("BadIDs = %v", got)
	}
}

// TestPairChecksBounded: the recorded pair checks are positive when moves
// are attempted and within the O(n^2) bound.
func TestPairChecksBounded(t *testing.T) {
	gen := workload.NewGenerator(workload.Config{Seed: 901, Items: 8})
	origin := gen.OriginState()
	for trial := 0; trial < 50; trial++ {
		n := 10
		a, err := gen.RunHistory(tx.Tentative, n, origin)
		if err != nil {
			t.Fatal(err)
		}
		bad := gen.RandomBadSet(n, 0.2)
		res, err := Algorithm2(a, bad, StaticDetector{})
		if err != nil {
			t.Fatal(err)
		}
		if res.PairChecks < 0 || res.PairChecks > n*n {
			t.Fatalf("trial %d: pair checks %d outside [0, %d]", trial, res.PairChecks, n*n)
		}
	}
}
