package rewrite

import (
	"reflect"
	"testing"

	"tiermerge/internal/expr"
	"tiermerge/internal/history"
	"tiermerge/internal/model"
	"tiermerge/internal/papertest"
	"tiermerge/internal/tx"
	"tiermerge/internal/workload"
)

// TestAlgorithm1BWMatchesAlgorithm1WithoutBlindWrites: on blind-write-free
// histories the generalized variant is exactly Algorithm 1.
func TestAlgorithm1BWMatchesAlgorithm1WithoutBlindWrites(t *testing.T) {
	gen := workload.NewGenerator(workload.Config{Seed: 301, Items: 8})
	origin := gen.OriginState()
	for trial := 0; trial < 150; trial++ {
		a, err := gen.RunHistory(tx.Tentative, 8, origin)
		if err != nil {
			t.Fatal(err)
		}
		bad := gen.RandomBadSet(8, 0.25)
		r1, err := Algorithm1(a, bad)
		if err != nil {
			t.Fatal(err)
		}
		rbw, err := Algorithm1BW(a, bad)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1.Rewritten.IDs(), rbw.Rewritten.IDs()) ||
			r1.PrefixLen != rbw.PrefixLen {
			t.Fatalf("trial %d: Alg1 %v/%d != Alg1BW %v/%d", trial,
				r1.Rewritten.IDs(), r1.PrefixLen, rbw.Rewritten.IDs(), rbw.PrefixLen)
		}
		for i := range r1.Rewritten.Entries {
			f1 := r1.Rewritten.Entries[i].Fix
			f2 := rbw.Rewritten.Entries[i].Fix
			if f1.String() != f2.String() {
				t.Fatalf("trial %d pos %d: fixes differ: %s vs %s", trial, i, f1, f2)
			}
		}
	}
}

// TestAlgorithm1BWOnExample1 runs the generalized rewriting on the paper's
// Example 1, which plain Algorithm 1 must reject (Tm2 blind-writes).
func TestAlgorithm1BWOnExample1(t *testing.T) {
	e := papertest.NewExample1()
	a, err := history.Run(history.New(e.Mobile()...), e.Origin)
	if err != nil {
		t.Fatal(err)
	}
	bad := map[int]bool{2: true} // B = {Tm3}, as the graph strategies choose

	if _, err := Algorithm1(a, bad); err == nil {
		t.Fatal("Algorithm 1 accepted a blind-write history")
	}
	res, err := Algorithm1BW(a, bad)
	if err != nil {
		t.Fatal(err)
	}
	// Tm4 reads d6 from Tm3 (affected) and also write-write conflicts with
	// it; the prefix is {Tm1, Tm2}, matching the closure result.
	if got := res.SavedIDs(); !reflect.DeepEqual(got, []string{"Tm1", "Tm2"}) {
		t.Errorf("saved = %v, want [Tm1 Tm2]", got)
	}
	raug, err := history.Run(res.Rewritten, e.Origin)
	if err != nil {
		t.Fatal(err)
	}
	if !raug.Final().Equal(a.Final()) {
		t.Errorf("rewritten final %s != original %s", raug.Final(), a.Final())
	}
}

// TestBWOverwriteCollisionBlocks: a good blind overwrite of an item a bad
// transaction wrote cannot move (swapping would flip the surviving value),
// even though it reads nothing from the bad transaction.
func TestBWOverwriteCollisionBlocks(t *testing.T) {
	bad := tx.MustNew("B1", tx.Tentative,
		tx.Update("x", expr.Add(expr.Var("x"), expr.Const(1))),
	)
	good := tx.MustNew("G1", tx.Tentative, tx.Assign("x", expr.Const(99)))
	a, err := history.Run(history.New(bad, good), model.NewState())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Algorithm1BW(a, map[int]bool{0: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.PrefixLen != 0 {
		t.Errorf("prefix = %v, want empty (overwrite collision)", res.SavedIDs())
	}
	// The closure approach, by contrast, keeps G1: it reads nothing from
	// B1. This is the documented saved(Alg1BW) ⊆ saved(closure) gap.
	kept, _ := ClosureBackout(a, map[int]bool{0: true})
	if got := kept.IDs(); !reflect.DeepEqual(got, []string{"G1"}) {
		t.Errorf("closure kept %v, want [G1]", got)
	}
}

// TestBWFinalStateEquivalence fuzzes blind-write histories: every
// Algorithm1BW rewrite stays final state equivalent and its prefix is
// contained in the closure survivors.
func TestBWFinalStateEquivalence(t *testing.T) {
	items := []model.Item{"a", "b", "c", "d"}
	next := uint64(77)
	rnd := func(n int) int {
		next = next*6364136223846793005 + 1442695040888963407
		return int(next>>33) % n
	}
	mkTxn := func(id string) *tx.Transaction {
		var body []tx.Stmt
		nStmts := 1 + rnd(3)
		used := make(model.ItemSet)
		for k := 0; k < nStmts; k++ {
			it := items[rnd(len(items))]
			if used.Has(it) {
				continue
			}
			used.Add(it)
			switch rnd(3) {
			case 0:
				body = append(body, tx.Read(it))
			case 1:
				body = append(body, tx.Update(it, expr.Add(expr.Var(it), expr.Const(model.Value(1+rnd(9))))))
			default:
				body = append(body, tx.Assign(it, expr.Const(model.Value(rnd(100)))))
			}
		}
		if len(body) == 0 {
			body = append(body, tx.Read(items[0]))
		}
		return tx.MustNew(id, tx.Tentative, body...)
	}
	origin := model.StateOf(map[model.Item]model.Value{"a": 1, "b": 2, "c": 3, "d": 4})
	for trial := 0; trial < 300; trial++ {
		n := 4 + rnd(5)
		h := &history.History{}
		for i := 0; i < n; i++ {
			h.Append(mkTxn(itoa2("T", i)))
		}
		a, err := history.Run(h, origin)
		if err != nil {
			t.Fatal(err)
		}
		bad := map[int]bool{rnd(n): true}
		res, err := Algorithm1BW(a, bad)
		if err != nil {
			t.Fatal(err)
		}
		raug, err := history.Run(res.Rewritten, origin)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !raug.Final().Equal(a.Final()) {
			t.Fatalf("trial %d: not final-state equivalent\nhistory %s\nbad %v\nrewritten %s",
				trial, a.H, bad, res.Rewritten)
		}
		// Containment in the closure survivors.
		kept, _ := ClosureBackout(a, bad)
		keptSet := make(map[string]bool)
		for _, id := range kept.IDs() {
			keptSet[id] = true
		}
		for _, id := range res.SavedIDs() {
			if !keptSet[id] {
				t.Fatalf("trial %d: BW saved %s, closure did not", trial, id)
			}
		}
		// The repaired prefix re-executes cleanly and matches undo pruning.
		oracle, err := history.Run(res.Repaired(), origin)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_ = oracle
	}
}

func itoa2(prefix string, i int) string {
	return prefix + string(rune('0'+i/10)) + string(rune('0'+i%10))
}
