package rewrite

import (
	"fmt"

	"tiermerge/internal/model"
)

// Block explains why a good transaction stayed in the tail: which blocked
// transaction it could not move past, and on which items the move test
// failed. Attached to Result.Blocked for diagnostics, CLIs and tests.
type Block struct {
	// Blocker is the ID of the first tail transaction the move failed
	// against (scanning right-to-left from the moved transaction, as the
	// algorithms do).
	Blocker string
	// ReadItems are the moved transaction's reads that the blocker writes
	// (the can-follow violation: the blocker cannot follow it).
	ReadItems model.ItemSet
	// WriteItems are write-write collisions with the blocker (only under
	// blind-write rewriting; empty otherwise, where write sets are covered
	// by ReadItems).
	WriteItems model.ItemSet
	// PrecedeTried reports whether a can-precede check also ran (Algorithm
	// 2 / CBTR) and failed.
	PrecedeTried bool
}

// String renders the reason compactly.
func (b Block) String() string {
	s := "blocked by " + b.Blocker
	if len(b.ReadItems) > 0 {
		s += fmt.Sprintf(" (reads %s written by it", b.ReadItems)
		if b.PrecedeTried {
			s += "; can-precede failed"
		}
		s += ")"
	} else if len(b.WriteItems) > 0 {
		s += fmt.Sprintf(" (overwrite collision on %s)", b.WriteItems)
	} else if b.PrecedeTried {
		s += " (can-precede failed)"
	}
	return s
}

// explainBlock derives the Block for a failed move of t past blk under the
// given capabilities.
func explainBlock(t, blk *entry, precedeTried, blindAware bool) Block {
	b := Block{Blocker: blk.e.T.ID, PrecedeTried: precedeTried}
	reads := blk.eff.WriteSet.Intersect(t.eff.ReadSet)
	if len(reads) > 0 {
		b.ReadItems = reads
	}
	if blindAware {
		if ww := blk.eff.WriteSet.Intersect(t.eff.WriteSet).Minus(t.eff.ReadSet); len(ww) > 0 {
			b.WriteItems = ww
		}
	}
	return b
}

// ExplainIDs renders the Result's blocked map as "id: reason" lines in
// original history order.
func (r *Result) ExplainIDs() []string {
	if len(r.Blocked) == 0 {
		return nil
	}
	var out []string
	for pos := 0; pos < r.Original.H.Len(); pos++ {
		if b, ok := r.Blocked[pos]; ok {
			out = append(out, fmt.Sprintf("%s: %s", r.Original.H.Txn(pos).ID, b))
		}
	}
	return out
}
