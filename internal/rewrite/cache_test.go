package rewrite

import (
	"fmt"
	"sync"
	"testing"

	"tiermerge/internal/expr"
	"tiermerge/internal/model"
	"tiermerge/internal/tx"
	"tiermerge/internal/workload"
)

// TestCachedDetectorAgreesWithInner fuzzes canned-type pairs and checks the
// cached detector never diverges from the uncached static detector, while
// actually hitting its cache.
func TestCachedDetectorAgreesWithInner(t *testing.T) {
	gen := workload.NewGenerator(workload.Config{Seed: 401, Items: 6, PCommutative: 0.7})
	cached := NewCachedDetector(StaticDetector{})
	static := StaticDetector{}
	for trial := 0; trial < 2000; trial++ {
		t1 := gen.Txn(tx.Tentative)
		t2 := gen.Txn(tx.Tentative)
		fix := tx.Fix{}
		ro := t1.StaticReadSet().Minus(t1.StaticWriteSet())
		for it := range ro {
			if gen.Rand().Intn(2) == 0 {
				fix[it] = 1 // values are irrelevant to the static analysis
			}
		}
		want := static.CanPrecede(t2, t1, fix)
		if got := cached.CanPrecede(t2, t1, fix); got != want {
			t.Fatalf("trial %d: cached %v, static %v\n t1=%s\n t2=%s fix=%s",
				trial, got, want, t1, t2, fix)
		}
	}
	hits, misses := cached.Stats()
	if hits == 0 {
		t.Error("cache never hit; key canonicalization too fine")
	}
	if misses == 0 {
		t.Error("cache never missed; suspicious")
	}
	t.Logf("cache: %d hits, %d misses", hits, misses)
}

// TestCachedDetectorKeyRespectsItemCoincidence: deposit(a) vs setprice(a)
// must not share a verdict with deposit(a) vs setprice(b).
func TestCachedDetectorKeyRespectsItemCoincidence(t *testing.T) {
	cached := NewCachedDetector(StaticDetector{})
	dep := workload.Deposit("D", tx.Tentative, "a", 5)
	spSame := workload.SetPrice("S1", tx.Tentative, "a", 9)
	spOther := workload.SetPrice("S2", tx.Tentative, "b", 9)

	// deposit(a) cannot precede setprice(a): shared write, not additive.
	if cached.CanPrecede(dep, spSame, nil) {
		t.Error("deposit(a) can precede setprice(a)?")
	}
	// deposit(a) can precede setprice(b): disjoint.
	if !cached.CanPrecede(dep, spOther, nil) {
		t.Error("deposit(a) cannot precede setprice(b)?")
	}
}

// TestCachedDetectorKeyRenamingInvariance: the same coincidence pattern
// under renamed items must hit the cache.
func TestCachedDetectorKeyRenamingInvariance(t *testing.T) {
	cached := NewCachedDetector(StaticDetector{})
	_ = cached.CanPrecede(
		workload.Deposit("D1", tx.Tentative, "x", 1),
		workload.Deposit("D2", tx.Tentative, "x", 2), nil)
	_ = cached.CanPrecede(
		workload.Deposit("D3", tx.Tentative, "q", 1),
		workload.Deposit("D4", tx.Tentative, "q", 2), nil)
	hits, misses := cached.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1 (renaming should share the key)", hits, misses)
	}
}

// TestCachedDetectorSkipsAdHoc: transactions without a type bypass the
// cache entirely.
func TestCachedDetectorSkipsAdHoc(t *testing.T) {
	cached := NewCachedDetector(StaticDetector{})
	adhoc := tx.MustNew("A", tx.Tentative, tx.Read("x"))
	dep := workload.Deposit("D", tx.Tentative, "x", 5)
	_ = cached.CanPrecede(adhoc, dep, nil)
	_ = cached.CanPrecede(adhoc, dep, nil)
	hits, misses := cached.Stats()
	if hits != 0 || misses != 0 {
		t.Errorf("ad-hoc pair touched the cache: hits=%d misses=%d", hits, misses)
	}
}

// TestCachedDetectorConcurrent hammers the sharded memo table from many
// goroutines over a shared pair population: every verdict must agree with
// the uncached detector, and the atomic hit/miss tallies must account for
// every cacheable query.
func TestCachedDetectorConcurrent(t *testing.T) {
	gen := workload.NewGenerator(workload.Config{Seed: 402, Items: 6, PCommutative: 0.7})
	const pairs = 64
	type pair struct{ t1, t2 *tx.Transaction }
	pop := make([]pair, pairs)
	for i := range pop {
		pop[i] = pair{t1: gen.Txn(tx.Tentative), t2: gen.Txn(tx.Tentative)}
	}
	static := StaticDetector{}
	want := make([]bool, pairs)
	for i, p := range pop {
		want[i] = static.CanPrecede(p.t2, p.t1, nil)
	}

	cached := NewCachedDetector(StaticDetector{})
	const (
		workers = 8
		rounds  = 200
	)
	var wg sync.WaitGroup
	fail := make(chan string, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w*rounds + r) % pairs
				if got := cached.CanPrecede(pop[i].t2, pop[i].t1, nil); got != want[i] {
					select {
					case fail <- fmt.Sprintf("worker %d pair %d: cached %v, static %v", w, i, got, want[i]):
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	hits, misses := cached.Stats()
	if hits+misses != workers*rounds {
		t.Errorf("hits(%d)+misses(%d) = %d, want %d", hits, misses, hits+misses, workers*rounds)
	}
	// Concurrent first touches of one key can each count a miss, but misses
	// stay bounded by keys × workers — far below the query volume.
	if misses > int64(pairs*workers) {
		t.Errorf("misses = %d, want <= %d", misses, pairs*workers)
	}
	if hits == 0 {
		t.Error("cache never hit under concurrency")
	}
}

// TestCachedDetectorKeyRespectsBodyShape: two canned types that (illegally
// or accidentally) share a Type name and the same body-item sequence but
// differ in code — an additive update a := a + $amt versus a multiplicative
// update a := a * $f — must not share a memo slot. Before the key carried
// the full body shape, both reduced to "op|op|0,0,|0,0,|" and the second
// query returned the first query's verdict.
func TestCachedDetectorKeyRespectsBodyShape(t *testing.T) {
	mk := func(id string, e expr.Expr, params map[string]model.Value) *tx.Transaction {
		return tx.MustNew(id, tx.Tentative, tx.Update("a", e)).
			WithType("op").WithParams(params)
	}
	add1 := mk("A1", expr.Add(expr.Var("a"), expr.Param("amt")), map[string]model.Value{"amt": 5})
	add2 := mk("A2", expr.Add(expr.Var("a"), expr.Param("amt")), map[string]model.Value{"amt": 7})
	mul := mk("M", expr.Mul(expr.Var("a"), expr.Param("f")), map[string]model.Value{"f": 3})

	static := StaticDetector{}
	wantAdd := static.CanPrecede(add2, add1, nil)
	wantMul := static.CanPrecede(mul, add1, nil)
	if wantAdd == wantMul {
		t.Fatalf("static verdicts coincide (add=%v mul=%v); test needs differing ground truth",
			wantAdd, wantMul)
	}

	cached := NewCachedDetector(StaticDetector{})
	if got := cached.CanPrecede(add2, add1, nil); got != wantAdd {
		t.Errorf("cached add-pair verdict = %v, want %v", got, wantAdd)
	}
	// Pre-fix this second query hit the first query's memo slot and returned
	// the additive verdict.
	if got := cached.CanPrecede(mul, add1, nil); got != wantMul {
		t.Errorf("cached mul-pair verdict = %v, want %v (stale memo from add pair?)", got, wantMul)
	}
}
