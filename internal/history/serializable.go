package history

import (
	"tiermerge/internal/model"
)

// The paper assumes the tentative history "is serializable and there is an
// explicit serial history H^s of it" (Section 3); on a mobile node that
// holds by construction (transactions run one at a time, so the execution
// order itself is the serial witness). This file provides the conflict
// graph of an executed history and utilities over candidate serial orders:
// which reorderings are conflict-equivalent to the execution, and therefore
// guaranteed to reproduce its final state. The rewriting algorithms go
// beyond conflict equivalence — that is their point ("two final state
// equivalent histories might not be conflict equivalent") — and these
// utilities give tests the baseline to compare against.

// ConflictEdge records that the transaction at position From must precede
// the one at position To in any conflict-equivalent serial order: they
// access a common item, at least one writes it, and From executed first.
type ConflictEdge struct {
	From, To int
	Item     model.Item
}

// ConflictEdges computes the conflict relation of the executed history.
func ConflictEdges(a *Augmented) []ConflictEdge {
	var edges []ConflictEdge
	n := a.H.Len()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ei, ej := a.Effects[i], a.Effects[j]
			seen := make(model.ItemSet)
			for it := range ei.WriteSet {
				if ej.ReadSet.Has(it) || ej.WriteSet.Has(it) {
					seen.Add(it)
				}
			}
			for it := range ei.ReadSet {
				if ej.WriteSet.Has(it) {
					seen.Add(it)
				}
			}
			for it := range seen {
				edges = append(edges, ConflictEdge{From: i, To: j, Item: it})
			}
		}
	}
	return edges
}

// ValidSerialization reports whether the candidate order (a permutation of
// history positions) respects every conflict edge of the executed history —
// i.e. whether executing the transactions in that order is conflict
// equivalent to the original execution. Conflict-equivalent orders always
// reproduce the original final state; orders rejected here may or may not
// (final-state equivalence is the strictly weaker notion the rewriting
// algorithms exploit via fixes).
func ValidSerialization(a *Augmented, order []int) bool {
	n := a.H.Len()
	if len(order) != n {
		return false
	}
	posOf := make([]int, n)
	seen := make([]bool, n)
	for idx, p := range order {
		if p < 0 || p >= n || seen[p] {
			return false
		}
		seen[p] = true
		posOf[p] = idx
	}
	for _, e := range ConflictEdges(a) {
		if posOf[e.From] > posOf[e.To] {
			return false
		}
	}
	return true
}

// Permute returns a new history with the entries reordered by order (a
// permutation of positions).
func (h *History) Permute(order []int) *History {
	out := &History{Entries: make([]Entry, len(order))}
	for i, p := range order {
		out.Entries[i] = h.Entries[p]
	}
	return out
}
