package history

import (
	"testing"

	"tiermerge/internal/expr"
	"tiermerge/internal/model"
	"tiermerge/internal/tx"
)

// section3Example builds the paper's Section 3 history H1 = s0 B1 s1 G2 s2:
//
//	B1: if x > 0 then y := y + z + 3
//	G2: x := x - 1
//	s0 = {x=1; y=7; z=2}
func section3Example() (b1, g2 *tx.Transaction, s0 model.State) {
	b1 = tx.MustNew("B1", tx.Tentative,
		tx.If(expr.GT(expr.Var("x"), expr.Const(0)),
			tx.Update("y", expr.Add(expr.Var("y"), expr.Add(expr.Var("z"), expr.Const(3)))),
		),
	)
	g2 = tx.MustNew("G2", tx.Tentative,
		tx.Update("x", expr.Sub(expr.Var("x"), expr.Const(1))),
	)
	s0 = model.StateOf(map[model.Item]model.Value{"x": 1, "y": 7, "z": 2})
	return b1, g2, s0
}

// TestSection3AugmentedStates reproduces the paper's augmented history
// states s0, s1, s2 exactly.
func TestSection3AugmentedStates(t *testing.T) {
	b1, g2, s0 := section3Example()
	a, err := Run(New(b1, g2), s0)
	if err != nil {
		t.Fatal(err)
	}
	want := []model.State{
		model.StateOf(map[model.Item]model.Value{"x": 1, "y": 7, "z": 2}),
		model.StateOf(map[model.Item]model.Value{"x": 1, "y": 12, "z": 2}),
		model.StateOf(map[model.Item]model.Value{"x": 0, "y": 12, "z": 2}),
	}
	for i, w := range want {
		if !a.States[i].Equal(w) {
			t.Errorf("s%d = %s, want %s", i, a.States[i], w)
		}
	}
	if !a.BeforeState(1).Equal(want[1]) || !a.AfterState(1).Equal(want[2]) {
		t.Error("Before/AfterState indexing wrong")
	}
}

// TestSection3FixExample reproduces the paper's fix demonstration: the plain
// swap G2 B1 ends in a different state, but G2 B1^{x} ends in s2.
func TestSection3FixExample(t *testing.T) {
	b1, g2, s0 := section3Example()
	orig, err := Run(New(b1, g2), s0)
	if err != nil {
		t.Fatal(err)
	}
	// H2 = s0 G2 s3 B1 s3': plain swap loses the y update.
	plain, err := Run(New(g2, b1), s0)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Final().Equal(orig.Final()) {
		t.Error("plain swap should NOT be final state equivalent")
	}
	if plain.Final().Get("y") != 7 {
		t.Errorf("plain swap y = %d, want 7", plain.Final().Get("y"))
	}
	// H3 = s0 G2 s3 B1^{x=1} s2: the fix restores equivalence.
	fixed := &History{Entries: []Entry{
		{T: g2},
		{T: b1, Fix: tx.Fix{"x": 1}},
	}}
	faug, err := Run(fixed, s0)
	if err != nil {
		t.Fatal(err)
	}
	if !faug.Final().Equal(orig.Final()) {
		t.Errorf("H3 final = %s, want %s", faug.Final(), orig.Final())
	}
	// And via the equivalence predicate (same transaction set).
	eq, err := FinalStateEquivalent(New(b1, g2), New(g2, b1), s0)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("FinalStateEquivalent(H1, plain swap) = true, want false")
	}
}

func TestFinalStateEquivalentRequiresSameSet(t *testing.T) {
	b1, g2, s0 := section3Example()
	eq, err := FinalStateEquivalent(New(b1, g2), New(b1), s0)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("histories over different transaction sets reported equivalent")
	}
}

func TestHistoryHelpers(t *testing.T) {
	b1, g2, _ := section3Example()
	h := New(b1, g2)
	if h.Len() != 2 || h.Txn(0) != b1 {
		t.Error("Len/Txn wrong")
	}
	if got := h.IDs(); got[0] != "B1" || got[1] != "G2" {
		t.Errorf("IDs = %v", got)
	}
	if h.IndexOf("G2") != 1 || h.IndexOf("nope") != -1 {
		t.Error("IndexOf wrong")
	}
	if got := h.Prefix(1).IDs(); len(got) != 1 || got[0] != "B1" {
		t.Errorf("Prefix = %v", got)
	}
	if got := h.Suffix(1).IDs(); len(got) != 1 || got[0] != "G2" {
		t.Errorf("Suffix = %v", got)
	}
	c := h.Clone()
	c.Entries[0].Fix = tx.Fix{"x": 1}
	if !h.Entries[0].Fix.IsEmpty() {
		t.Error("Clone shares fixes")
	}
	if got, want := c.String(), "B1^{x=1} G2"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if !h.SameTransactionSet(New(g2, b1)) {
		t.Error("SameTransactionSet order-sensitive")
	}
	if h.SameTransactionSet(New(b1, b1)) {
		t.Error("SameTransactionSet ignores multiplicity")
	}
}

func TestReadsFrom(t *testing.T) {
	// T1 writes x; T2 reads x and writes y; T3 reads y; T4 reads x but T1's
	// write was overwritten by T2'... use a fresh writer chain:
	t1 := tx.MustNew("T1", tx.Tentative, tx.Update("x", expr.Add(expr.Var("x"), expr.Const(1))))
	t2 := tx.MustNew("T2", tx.Tentative,
		tx.Update("y", expr.Add(expr.Var("y"), expr.Var("x"))))
	t3 := tx.MustNew("T3", tx.Tentative,
		tx.Update("z", expr.Add(expr.Var("z"), expr.Var("y"))))
	t4 := tx.MustNew("T4", tx.Tentative, tx.Read("q"))
	a, err := Run(New(t1, t2, t3, t4), model.NewState())
	if err != nil {
		t.Fatal(err)
	}
	edges := ReadsFrom(a)
	type key struct{ w, r int }
	got := make(map[key]model.Item)
	for _, e := range edges {
		got[key{e.Writer, e.Reader}] = e.Item
	}
	if it := got[key{0, 1}]; it != "x" {
		t.Errorf("T2 reads x from T1: got %v / %q", got, it)
	}
	if it := got[key{1, 2}]; it != "y" {
		t.Errorf("T3 reads y from T2: got %q", it)
	}
	if _, ok := got[key{0, 2}]; ok {
		t.Error("T3 does not read from T1 directly")
	}
	if _, ok := got[key{0, 3}]; ok {
		t.Error("T4 reads nothing written")
	}
}

func TestReadsFromLastWriterWins(t *testing.T) {
	// T1 and T2 both write x; T3 reads x — only the T2 edge exists.
	t1 := tx.MustNew("T1", tx.Tentative, tx.Update("x", expr.Add(expr.Var("x"), expr.Const(1))))
	t2 := tx.MustNew("T2", tx.Tentative, tx.Update("x", expr.Add(expr.Var("x"), expr.Const(2))))
	t3 := tx.MustNew("T3", tx.Tentative, tx.Update("y", expr.Var("x")))
	a, err := Run(New(t1, t2, t3), model.NewState())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ReadsFrom(a) {
		if e.Reader == 2 && e.Writer == 0 {
			t.Error("T3 must read x from T2 (last writer), not T1")
		}
	}
}

func TestAffectedSetTransitive(t *testing.T) {
	// Chain: T0 -> T1 -> T2 (reads-from), T3 independent.
	t0 := tx.MustNew("T0", tx.Tentative, tx.Update("a", expr.Add(expr.Var("a"), expr.Const(1))))
	t1 := tx.MustNew("T1", tx.Tentative, tx.Update("b", expr.Add(expr.Var("b"), expr.Var("a"))))
	t2 := tx.MustNew("T2", tx.Tentative, tx.Update("c", expr.Add(expr.Var("c"), expr.Var("b"))))
	t3 := tx.MustNew("T3", tx.Tentative, tx.Update("d", expr.Add(expr.Var("d"), expr.Const(1))))
	a, err := Run(New(t0, t1, t2, t3), model.NewState())
	if err != nil {
		t.Fatal(err)
	}
	ag := AffectedSet(a, map[int]bool{0: true})
	if !ag[1] || !ag[2] {
		t.Errorf("AG = %v, want {1, 2}", ag)
	}
	if ag[3] {
		t.Error("independent T3 marked affected")
	}
	if ag[0] {
		t.Error("B member included in AG")
	}
}

func TestAffectedSetEmptyForCleanB(t *testing.T) {
	t0 := tx.MustNew("T0", tx.Tentative, tx.Update("a", expr.Add(expr.Var("a"), expr.Const(1))))
	t1 := tx.MustNew("T1", tx.Tentative, tx.Update("b", expr.Add(expr.Var("b"), expr.Const(1))))
	a, err := Run(New(t0, t1), model.NewState())
	if err != nil {
		t.Fatal(err)
	}
	if ag := AffectedSet(a, map[int]bool{0: true}); len(ag) != 0 {
		t.Errorf("AG = %v, want empty", ag)
	}
}

func TestRunErrorPropagates(t *testing.T) {
	bad := tx.MustNew("T1", tx.Tentative, tx.Update("x", expr.Div(expr.Const(1), expr.Const(0))))
	if _, err := Run(New(bad), model.NewState()); err == nil {
		t.Error("Run swallowed an execution error")
	}
}
