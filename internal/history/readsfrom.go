package history

import (
	"tiermerge/internal/model"
)

// ReadsFromEdge records that the transaction at position Reader read item
// Item from the transaction at position Writer (the paper's reads-from
// relation: the writer updated the item, the reader read it afterwards, and
// no transaction updated the item in between).
type ReadsFromEdge struct {
	Writer, Reader int
	Item           model.Item
}

// ReadsFrom computes every reads-from edge of the augmented history. Reads
// satisfied by the initial state (no prior writer) produce no edge.
func ReadsFrom(a *Augmented) []ReadsFromEdge {
	var edges []ReadsFromEdge
	lastWriter := make(map[model.Item]int)
	for i, eff := range a.Effects {
		for it := range eff.ReadValues {
			if w, ok := lastWriter[it]; ok {
				edges = append(edges, ReadsFromEdge{Writer: w, Reader: i, Item: it})
			}
		}
		for it := range eff.WriteSet {
			lastWriter[it] = i
		}
	}
	return edges
}

// AffectedSet computes AG, the set of affected transactions (Section 2.1):
// the transactions reachable from B through the transitive closure of the
// reads-from relation, excluding B itself. bad and the result are sets of
// positions in the history.
func AffectedSet(a *Augmented, bad map[int]bool) map[int]bool {
	edges := ReadsFrom(a)
	// adjacency: writer -> readers
	readers := make(map[int][]int)
	for _, e := range edges {
		readers[e.Writer] = append(readers[e.Writer], e.Reader)
	}
	affected := make(map[int]bool)
	var stack []int
	for b := range bad {
		stack = append(stack, b)
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range readers[v] {
			if bad[r] || affected[r] {
				continue
			}
			affected[r] = true
			stack = append(stack, r)
		}
	}
	return affected
}
