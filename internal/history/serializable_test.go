package history_test

import (
	"testing"

	"tiermerge/internal/expr"
	"tiermerge/internal/history"
	"tiermerge/internal/model"
	"tiermerge/internal/tx"
	"tiermerge/internal/workload"
)

func TestConflictEdgesDirections(t *testing.T) {
	w1 := tx.MustNew("W1", tx.Tentative, tx.Update("x", expr.Add(expr.Var("x"), expr.Const(1))))
	r2 := tx.MustNew("R2", tx.Tentative, tx.Read("x"))
	w3 := tx.MustNew("W3", tx.Tentative, tx.Update("x", expr.Add(expr.Var("x"), expr.Const(2))))
	o4 := tx.MustNew("O4", tx.Tentative, tx.Update("z", expr.Add(expr.Var("z"), expr.Const(1))))
	a, err := history.Run(history.New(w1, r2, w3, o4), model.NewState())
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ f, to int }
	got := make(map[key]bool)
	for _, e := range history.ConflictEdges(a) {
		got[key{e.From, e.To}] = true
	}
	for _, want := range []key{{0, 1}, {0, 2}, {1, 2}} {
		if !got[want] {
			t.Errorf("missing conflict edge %v", want)
		}
	}
	for bad := range map[key]bool{{0, 3}: true, {1, 3}: true, {2, 3}: true} {
		if got[bad] {
			t.Errorf("spurious conflict edge %v", bad)
		}
	}
}

func TestValidSerializationBasics(t *testing.T) {
	w1 := tx.MustNew("W1", tx.Tentative, tx.Update("x", expr.Add(expr.Var("x"), expr.Const(1))))
	r2 := tx.MustNew("R2", tx.Tentative, tx.Update("y", expr.Var("x")))
	o3 := tx.MustNew("O3", tx.Tentative, tx.Update("z", expr.Add(expr.Var("z"), expr.Const(1))))
	origin := model.StateOf(map[model.Item]model.Value{"x": 5})
	a, err := history.Run(history.New(w1, r2, o3), origin)
	if err != nil {
		t.Fatal(err)
	}
	if !history.ValidSerialization(a, []int{0, 1, 2}) {
		t.Error("identity order rejected")
	}
	// Swapping the conflicting pair (R2 reads x from W1) is invalid.
	if history.ValidSerialization(a, []int{1, 0, 2}) {
		t.Error("conflict-violating order accepted")
	}
	// Moving the independent O3 anywhere is valid and state-preserving.
	for _, order := range [][]int{{2, 0, 1}, {0, 2, 1}} {
		if !history.ValidSerialization(a, order) {
			t.Errorf("order %v rejected", order)
			continue
		}
		aug, err := history.Run(a.H.Permute(order), origin)
		if err != nil {
			t.Fatal(err)
		}
		if !aug.Final().Equal(a.Final()) {
			t.Errorf("order %v changed the final state", order)
		}
	}
	// Malformed permutations are rejected.
	for _, order := range [][]int{{0, 1}, {0, 1, 1}, {0, 1, 3}, {0, 1, -1}} {
		if history.ValidSerialization(a, order) {
			t.Errorf("malformed order %v accepted", order)
		}
	}
}

// TestValidSerializationsPreserveFinalState property-checks the core
// guarantee: every conflict-respecting reordering of a random history
// reproduces its final state.
func TestValidSerializationsPreserveFinalState(t *testing.T) {
	gen := workload.NewGenerator(workload.Config{Seed: 601, Items: 6})
	origin := gen.OriginState()
	rng := gen.Rand()
	for trial := 0; trial < 200; trial++ {
		a, err := gen.RunHistory(tx.Tentative, 6, origin)
		if err != nil {
			t.Fatal(err)
		}
		order := rng.Perm(6)
		if !history.ValidSerialization(a, order) {
			continue
		}
		aug, err := history.Run(a.H.Permute(order), origin)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !aug.Final().Equal(a.Final()) {
			t.Fatalf("trial %d: valid serialization %v changed the final state", trial, order)
		}
	}
}

// TestRewritingExceedsConflictEquivalence demonstrates the Section 3
// remark on H4: Algorithm 1's rewritten order G2 B1 G3 violates the
// conflict edge B1 -> G2 (B1 reads u, G2 writes u) — it is NOT conflict
// equivalent — yet with the fix {u} it is final state equivalent. Fixes buy
// exactly the orders conflict equivalence forbids.
func TestRewritingExceedsConflictEquivalence(t *testing.T) {
	b1 := tx.MustNew("B1", tx.Tentative,
		tx.If(expr.GT(expr.Var("u"), expr.Const(10)),
			tx.Update("x", expr.Add(expr.Var("x"), expr.Const(100))),
		),
	)
	g2 := tx.MustNew("G2", tx.Tentative, tx.Update("u", expr.Sub(expr.Var("u"), expr.Const(20))))
	origin := model.StateOf(map[model.Item]model.Value{"u": 30, "x": 0})
	a, err := history.Run(history.New(b1, g2), origin)
	if err != nil {
		t.Fatal(err)
	}
	swapped := []int{1, 0}
	if history.ValidSerialization(a, swapped) {
		t.Fatal("G2 B1 should not be conflict equivalent to B1 G2")
	}
	// Without a fix the swap changes the final state...
	plain, err := history.Run(a.H.Permute(swapped), origin)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Final().Equal(a.Final()) {
		t.Fatal("test premise broken: plain swap should diverge")
	}
	// ...with the fix it does not.
	fixed := a.H.Permute(swapped)
	fixed.Entries[1].Fix = tx.Fix{"u": 30}
	faug, err := history.Run(fixed, origin)
	if err != nil {
		t.Fatal(err)
	}
	if !faug.Final().Equal(a.Final()) {
		t.Error("fixed swap should be final state equivalent")
	}
}
