// Package history implements serial execution histories and the augmented
// histories of Section 3: sequences of interleaved transactions and database
// states, beginning and ending with a state. It also provides the reads-from
// relation and its transitive closure (the affected set AG), and the
// final-state equivalence predicate (the equivalence notion every rewriting
// step must preserve).
package history

import (
	"fmt"
	"strings"

	"tiermerge/internal/model"
	"tiermerge/internal/tx"
)

// Entry is one position of a history: a transaction together with its fix.
// Ordinary serializable histories carry the empty fix at every position
// (Section 3); rewriting introduces non-empty fixes.
type Entry struct {
	T   *tx.Transaction
	Fix tx.Fix
}

// History is a serial history H^s: an ordered list of entries.
type History struct {
	Entries []Entry
}

// New builds a history over the given transactions, all with empty fixes.
func New(txns ...*tx.Transaction) *History {
	h := &History{Entries: make([]Entry, len(txns))}
	for i, t := range txns {
		h.Entries[i] = Entry{T: t}
	}
	return h
}

// Len returns the number of transactions.
func (h *History) Len() int { return len(h.Entries) }

// Txn returns the i-th transaction.
func (h *History) Txn(i int) *tx.Transaction { return h.Entries[i].T }

// Append adds a transaction with an empty fix and returns h.
func (h *History) Append(t *tx.Transaction) *History {
	h.Entries = append(h.Entries, Entry{T: t})
	return h
}

// Clone copies the history (entries and fixes; transactions are shared).
func (h *History) Clone() *History {
	c := &History{Entries: make([]Entry, len(h.Entries))}
	for i, e := range h.Entries {
		c.Entries[i] = Entry{T: e.T, Fix: e.Fix.Clone()}
	}
	return c
}

// Prefix returns a new history holding the first n entries.
func (h *History) Prefix(n int) *History {
	c := &History{Entries: make([]Entry, n)}
	copy(c.Entries, h.Entries[:n])
	return c
}

// Suffix returns a new history holding the entries from position n on.
func (h *History) Suffix(n int) *History {
	c := &History{Entries: make([]Entry, len(h.Entries)-n)}
	copy(c.Entries, h.Entries[n:])
	return c
}

// IDs returns the transaction IDs in order.
func (h *History) IDs() []string {
	ids := make([]string, len(h.Entries))
	for i, e := range h.Entries {
		ids[i] = e.T.ID
	}
	return ids
}

// IndexOf returns the position of the transaction with the given ID, or -1.
func (h *History) IndexOf(id string) int {
	for i, e := range h.Entries {
		if e.T.ID == id {
			return i
		}
	}
	return -1
}

// SameTransactionSet reports whether the two histories are over exactly the
// same set of transaction instances (by pointer identity).
func (h *History) SameTransactionSet(o *History) bool {
	if h.Len() != o.Len() {
		return false
	}
	seen := make(map[*tx.Transaction]int, h.Len())
	for _, e := range h.Entries {
		seen[e.T]++
	}
	for _, e := range o.Entries {
		seen[e.T]--
		if seen[e.T] < 0 {
			return false
		}
	}
	return true
}

// String renders the history as "T1 T2^{x} T3 ...", marking non-empty fixes.
func (h *History) String() string {
	parts := make([]string, len(h.Entries))
	for i, e := range h.Entries {
		if e.Fix.IsEmpty() {
			parts[i] = e.T.ID
		} else {
			parts[i] = e.T.ID + "^" + e.Fix.String()
		}
	}
	return strings.Join(parts, " ")
}

// Augmented is an augmented history (Section 3): the history decorated with
// explicit database states. States[i] is the before state of transaction i;
// States[len] is the final state. Effects[i] is the effect log of the i-th
// execution.
type Augmented struct {
	H       *History
	States  []model.State
	Effects []*tx.Effect
}

// Run executes the history serially from s0 and returns the augmented
// history. s0 is not modified.
func Run(h *History, s0 model.State) (*Augmented, error) {
	a := &Augmented{
		H:       h,
		States:  make([]model.State, h.Len()+1),
		Effects: make([]*tx.Effect, h.Len()),
	}
	cur := s0.Clone()
	a.States[0] = cur
	for i, e := range h.Entries {
		next, eff, err := e.T.Exec(cur, e.Fix)
		if err != nil {
			return nil, fmt.Errorf("history: position %d (%s): %w", i, e.T.ID, err)
		}
		a.States[i+1] = next
		a.Effects[i] = eff
		cur = next
	}
	return a, nil
}

// Final returns the final state of the augmented history.
func (a *Augmented) Final() model.State { return a.States[len(a.States)-1] }

// BeforeState returns the state immediately preceding transaction i.
func (a *Augmented) BeforeState(i int) model.State { return a.States[i] }

// AfterState returns the state immediately following transaction i.
func (a *Augmented) AfterState(i int) model.State { return a.States[i+1] }

// FinalStateEquivalent reports whether h1 and h2, executed from s0, are
// final state equivalent (Section 3): they are over the same set of
// transactions and produce identical final states. Execution errors
// propagate.
func FinalStateEquivalent(h1, h2 *History, s0 model.State) (bool, error) {
	if !h1.SameTransactionSet(h2) {
		return false, nil
	}
	a1, err := Run(h1, s0)
	if err != nil {
		return false, fmt.Errorf("history: run h1: %w", err)
	}
	a2, err := Run(h2, s0)
	if err != nil {
		return false, fmt.Errorf("history: run h2: %w", err)
	}
	return a1.Final().Equal(a2.Final()), nil
}
