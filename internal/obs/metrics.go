package obs

// Metrics is the Observer that folds the reconnect event stream into a
// Registry: per-phase event counters and latency histograms, admission
// retry tallies by cause, fallback tallies by reason, serial degradations,
// and the saved / backed-out / re-executed transaction totals — the
// statistics protocol comparisons report (saved ratio, reconnect latency
// distribution, abort causes).
type Metrics struct {
	reg *Registry
}

// NewMetrics returns a Metrics observer over a fresh registry.
func NewMetrics() *Metrics { return &Metrics{reg: NewRegistry()} }

// Registry exposes the underlying registry (also the RegistryProvider
// implementation BaseServer uses to locate it for metric dumps).
func (m *Metrics) Registry() *Registry { return m.reg }

// Metric families Metrics maintains.
const (
	MetricEvents       = "tiermerge_events_total"        // counter, label phase
	MetricPhaseSeconds = "tiermerge_phase_seconds"       // histogram, label phase
	MetricAdmits       = "tiermerge_admits_total"        // counter
	MetricAdmitRetries = "tiermerge_admit_retries_total" // counter, label cause
	MetricSerial       = "tiermerge_serial_total"        // counter
	MetricFallbacks    = "tiermerge_fallbacks_total"     // counter, label cause
	MetricMerges       = "tiermerge_merges_total"        // counter
	MetricReconnectSec = "tiermerge_reconnect_seconds"   // histogram
	MetricSaved        = "tiermerge_txns_saved_total"    // counter
	MetricBackedOut    = "tiermerge_txns_backed_out_total"
	MetricReexecuted   = "tiermerge_txns_reexecuted_total"
	MetricFailed       = "tiermerge_txns_failed_total"
	MetricLagApplied   = "tiermerge_replica_updates_applied_total"
	MetricRecoveries   = "tiermerge_recoveries_total"            // counter
	MetricReplayed     = "tiermerge_wal_records_replayed_total"  // counter
	MetricDroppedTail  = "tiermerge_wal_dropped_tail_txns_total" // counter
	MetricTornTails    = "tiermerge_wal_torn_tails_total"        // counter
	MetricIncremental  = "tiermerge_merge_incremental_total"     // counter
	MetricAdmitBatch   = "tiermerge_admit_batch_size"            // histogram
)

// admitBatchBuckets are the batch-size histogram bounds: the observed value
// is a merge count, not a latency, so the default (seconds-scaled) buckets
// do not apply.
var admitBatchBuckets = []float64{1, 2, 4, 8, 16, 32}

// Observe folds one event into the registry.
func (m *Metrics) Observe(ev Event) {
	phase := string(ev.Phase)
	m.reg.Counter(Label(MetricEvents, "phase", phase)).Inc()
	if ev.Dur > 0 {
		m.reg.Histogram(Label(MetricPhaseSeconds, "phase", phase), nil).ObserveDuration(ev.Dur)
	}
	switch ev.Phase {
	case PhaseAdmit:
		if ev.Cause == CauseNone {
			m.reg.Counter(MetricAdmits).Inc()
			if ev.Batch > 0 {
				m.reg.Histogram(MetricAdmitBatch, admitBatchBuckets).Observe(float64(ev.Batch))
			}
		} else {
			m.reg.Counter(Label(MetricAdmitRetries, "cause", string(ev.Cause))).Inc()
		}
	case PhaseExtend:
		m.reg.Counter(MetricIncremental).Inc()
	case PhaseSerial:
		m.reg.Counter(MetricSerial).Inc()
	case PhaseFallback:
		// Tallies of a fallen-back reconnect ride on its merge summary
		// event; the fallback event only classifies the cause.
		m.reg.Counter(Label(MetricFallbacks, "cause", string(ev.Cause))).Inc()
	case PhaseReprocess:
		m.reg.Counter(MetricReexecuted).Add(int64(ev.Reexecuted))
		m.reg.Counter(MetricFailed).Add(int64(ev.Failed))
	case PhaseMerge:
		m.reg.Counter(MetricMerges).Inc()
		if ev.Dur > 0 {
			m.reg.Histogram(MetricReconnectSec, nil).ObserveDuration(ev.Dur)
		}
		m.reg.Counter(MetricSaved).Add(int64(ev.Saved))
		m.reg.Counter(MetricBackedOut).Add(int64(ev.BackedOut))
		m.reg.Counter(MetricReexecuted).Add(int64(ev.Reexecuted))
		m.reg.Counter(MetricFailed).Add(int64(ev.Failed))
	case PhasePropagate:
		m.reg.Counter(MetricLagApplied).Add(int64(ev.Lag))
	case PhaseRecover:
		m.reg.Counter(MetricRecoveries).Inc()
		m.reg.Counter(MetricReplayed).Add(int64(ev.Replayed))
		m.reg.Counter(MetricDroppedTail).Add(int64(ev.DroppedTail))
		if ev.Cause == CauseTornTail {
			m.reg.Counter(MetricTornTails).Inc()
		}
	}
}
