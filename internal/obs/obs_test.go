package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterGaugeHistogram: the primitive metrics accumulate atomically
// and snapshot consistently.
func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("Counter is not get-or-create")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	h := r.Histogram("h", []float64{0.001, 0.1})
	h.Observe(0.0005)                        // bucket 0
	h.ObserveDuration(10 * time.Millisecond) // bucket 1
	h.Observe(5)                             // +Inf
	s := h.Snapshot()
	if s.Count != 3 {
		t.Errorf("count = %d, want 3", s.Count)
	}
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Errorf("bucket counts = %v, want [1 1 1]", s.Counts)
	}
	wantSum := 0.0005 + 0.010 + 5
	if s.Sum < wantSum-1e-6 || s.Sum > wantSum+1e-6 {
		t.Errorf("sum = %g, want %g", s.Sum, wantSum)
	}
}

// TestRegistryConcurrent: concurrent get-or-create and updates are safe
// (run under -race).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("shared").Inc()
				r.Histogram("lat", nil).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 800 {
		t.Errorf("shared counter = %d, want 800", got)
	}
	if got := r.Histogram("lat", nil).Snapshot().Count; got != 800 {
		t.Errorf("histogram count = %d, want 800", got)
	}
}

// TestLabel: inline label splicing merges with existing labels.
func TestLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{Label("x"), "x"},
		{Label("x", "a", "1"), `x{a="1"}`},
		{Label(`x{a="1"}`, "b", "2"), `x{a="1",b="2"}`},
		{Label("x", "a", "1", "b", "2"), `x{a="1",b="2"}`},
	}
	for _, c := range cases {
		if c.in != c.want {
			t.Errorf("got %s, want %s", c.in, c.want)
		}
	}
}

// TestWritePrometheus: the text exposition has TYPE lines per family,
// cumulative buckets, and label-aware suffixing.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("ev_total", "phase", "admit")).Add(2)
	r.Counter(Label("ev_total", "phase", "rewrite")).Add(3)
	r.Gauge("lag").Set(4)
	h := r.Histogram(`dur_seconds{phase="admit"}`, []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ev_total counter",
		`ev_total{phase="admit"} 2`,
		`ev_total{phase="rewrite"} 3`,
		"# TYPE lag gauge",
		"lag 4",
		"# TYPE dur_seconds histogram",
		`dur_seconds_bucket{phase="admit",le="0.01"} 1`,
		`dur_seconds_bucket{phase="admit",le="0.1"} 2`,
		`dur_seconds_bucket{phase="admit",le="+Inf"} 2`,
		`dur_seconds_count{phase="admit"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE ev_total"); n != 1 {
		t.Errorf("TYPE ev_total emitted %d times, want 1", n)
	}
}

// TestMultiAndBind: Multi skips nils and collapses; Bind stamps identity
// without clobbering set fields.
func TestMultiAndBind(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("empty Multi must be nil")
	}
	tr := NewTracer()
	if Multi(nil, tr) != Observer(tr) {
		t.Error("single-member Multi must collapse")
	}
	m := NewMetrics()
	fan := Multi(tr, m)
	fan.Observe(Event{Phase: PhaseAdmit})
	if len(tr.Events()) != 1 {
		t.Error("Multi did not fan out to tracer")
	}
	if RegistryOf(fan) != m.Registry() {
		t.Error("Multi must surface the member registry")
	}

	var got Event
	bound := Bind(ObserverFunc(func(ev Event) { got = ev }), "m1", 7)
	bound.Observe(Event{Phase: PhaseRewrite})
	if got.Mobile != "m1" || got.Seq != 7 {
		t.Errorf("Bind did not stamp identity: %+v", got)
	}
	bound.Observe(Event{Phase: PhaseRewrite, Mobile: "m2", Seq: 9})
	if got.Mobile != "m2" || got.Seq != 9 {
		t.Errorf("Bind clobbered set fields: %+v", got)
	}
	if Bind(nil, "m1", 1) != nil {
		t.Error("Bind(nil) must stay nil")
	}
}

// TestTracerMerges: events group by sequence number in order, and
// Outcome reads the summary correctly.
func TestTracerMerges(t *testing.T) {
	tr := NewTracer()
	tr.Observe(Event{Phase: PhaseCheckout, Mobile: "m1"}) // seq 0: not merge-scoped
	tr.Observe(Event{Seq: 2, Mobile: "m2", Phase: PhaseSnapshot})
	tr.Observe(Event{Seq: 1, Mobile: "m1", Phase: PhaseSnapshot})
	tr.Observe(Event{Seq: 1, Mobile: "m1", Phase: PhaseMerge, Saved: 2})
	tr.Observe(Event{Seq: 2, Mobile: "m2", Phase: PhaseFallback, Cause: CauseWindowExpired})
	tr.Observe(Event{Seq: 2, Mobile: "m2", Phase: PhaseMerge})
	ms := tr.Merges()
	if len(ms) != 2 {
		t.Fatalf("got %d merges, want 2", len(ms))
	}
	if ms[0].Seq != 1 || ms[1].Seq != 2 {
		t.Errorf("merge order = %d,%d, want 1,2", ms[0].Seq, ms[1].Seq)
	}
	if got := ms[0].Outcome(); got != "merged" {
		t.Errorf("outcome #1 = %q, want merged", got)
	}
	if got := ms[1].Outcome(); got != "fallback(window-expired)" {
		t.Errorf("outcome #2 = %q, want fallback(window-expired)", got)
	}
	var b strings.Builder
	ms[1].Format(&b)
	if !strings.Contains(b.String(), "cause=window-expired") {
		t.Errorf("Format missing cause:\n%s", b.String())
	}
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Error("Reset did not clear events")
	}
}

// TestMetricsObserve: events fold into the expected series, and fallback
// tallies are not double counted against the merge summary.
func TestMetricsObserve(t *testing.T) {
	m := NewMetrics()
	m.Observe(Event{Phase: PhaseAdmit, Attempt: 1, Cause: CauseStructChanged})
	m.Observe(Event{Phase: PhaseAdmit, Attempt: 2, Dur: time.Millisecond})
	m.Observe(Event{Phase: PhaseSerial, Dur: time.Millisecond})
	m.Observe(Event{Phase: PhaseFallback, Cause: CauseWindowExpired, Reexecuted: 3, Failed: 1})
	m.Observe(Event{Phase: PhaseMerge, Dur: time.Millisecond, Saved: 2, BackedOut: 1, Reexecuted: 3, Failed: 1})
	m.Observe(Event{Phase: PhaseReprocess, Reexecuted: 5, Failed: 2})
	m.Observe(Event{Phase: PhaseExtend, NewVertices: 4, NewEdges: 7})
	m.Observe(Event{Phase: PhaseAdmit, Batch: 3})
	s := m.Registry().Snapshot()
	for name, want := range map[string]int64{
		Label(MetricAdmitRetries, "cause", string(CauseStructChanged)): 1,
		MetricAdmits: 2,
		MetricSerial: 1,
		Label(MetricFallbacks, "cause", string(CauseWindowExpired)): 1,
		MetricMerges:      1,
		MetricSaved:       2,
		MetricBackedOut:   1,
		MetricReexecuted:  8, // 3 (merge summary) + 5 (reprocess); fallback event adds nothing
		MetricFailed:      3, // 1 + 2
		MetricIncremental: 1,
		Label(MetricEvents, "phase", string(PhaseAdmit)): 3,
	} {
		if got := s.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := s.Histograms[MetricReconnectSec].Count; got != 1 {
		t.Errorf("reconnect histogram count = %d, want 1", got)
	}
	if h := s.Histograms[MetricAdmitBatch]; h.Count != 1 || h.Sum != 3 {
		t.Errorf("admit batch histogram = count %d sum %.0f, want 1/3", h.Count, h.Sum)
	}
}
