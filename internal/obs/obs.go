// Package obs is the observability layer of the merge pipeline: a
// dependency-free (standard library only) metrics registry — atomic
// counters, gauges and fixed-bucket latency histograms — plus a span-based
// event model that instruments every phase of a mobile node's reconnect
// path.
//
// The protocol code emits one Event per phase span (checkout,
// disconnect-run, snapshot, graph build, back-out, rewrite, prune,
// validate-and-admit attempts with their retry cause, serial degradation,
// fallback, reprocessing, and the whole-merge summary) through a single
// Observer hook. A nil Observer pays exactly one nil check per would-be
// event — the cluster's zero-value configuration runs the hot path
// untouched.
//
// Two Observer implementations ship with the package: Metrics folds events
// into a Registry (counters, retry-cause tallies, per-phase latency
// histograms — the statistics Sutra–Shapiro-style protocol comparisons
// evaluate), and Tracer records raw events for per-merge phase breakdowns
// (cmd/tiermerge trace). Multi fans one event stream out to several
// observers.
package obs

import "time"

// Phase names one stage of the reconnect path. The values map onto the
// paper's protocol steps (DESIGN.md §9 has the full taxonomy): graph-build
// is Section 2.1 step 1, back-out step 2, rewrite steps 3 (Algorithms 1/2),
// prune step 4, reprocess step 6; snapshot, admit and serial-degrade belong
// to the concurrent pipeline (DESIGN.md §7), which the paper's serial
// presentation does not need.
type Phase string

// Reconnect phases, in the order a fully-merged reconnect emits them.
const (
	// PhaseCheckout is the replica download when a mobile synchronizes
	// before disconnecting (Section 2.2).
	PhaseCheckout Phase = "checkout"
	// PhaseRun is one tentative transaction executed while disconnected.
	PhaseRun Phase = "disconnect-run"
	// PhaseSnapshot is the short critical section capturing the immutable
	// base-prefix view a merge prepares against.
	PhaseSnapshot Phase = "snapshot"
	// PhaseGraph is precedence-graph construction (step 1).
	PhaseGraph Phase = "graph-build"
	// PhaseExtend is an incremental re-prepare: instead of rebuilding
	// G(Hm, Hb) from scratch, a retry attempt extends the previous attempt's
	// graph with only the base entries committed since its snapshot.
	// NewVertices/NewEdges carry the extension size; Affected carries the
	// number of new edges incident to Hm (zero means the prior back-out and
	// rewrite were reused unchanged).
	PhaseExtend Phase = "graph-extend"
	// PhaseBackout is the back-out set computation (step 2).
	PhaseBackout Phase = "back-out"
	// PhaseRewrite is the history rewrite (steps 3, Algorithms 1/2/CBT).
	PhaseRewrite Phase = "rewrite"
	// PhasePrune is pruning of the rewritten tail (step 4).
	PhasePrune Phase = "prune"
	// PhaseAdmit is one validate-and-admit attempt of the optimistic
	// pipeline; Cause carries the retry cause when validation failed.
	PhaseAdmit Phase = "admit"
	// PhaseSerial marks a merge degrading to the serial path after
	// exhausting its optimistic attempts; its span covers the serial run.
	PhaseSerial Phase = "serial-degrade"
	// PhaseFallback marks a reconnect falling back to reprocessing; Cause
	// carries the fallback reason.
	PhaseFallback Phase = "fallback"
	// PhaseReprocess is a reconnect reconciling through the original
	// reprocessing protocol by choice (not as a merge fallback).
	PhaseReprocess Phase = "reprocess"
	// PhasePropagate is a lazy-replication drain applying queued updates to
	// follower replicas; Lag carries the number of updates applied.
	PhasePropagate Phase = "propagate"
	// PhaseRecover is a crash recovery: a mobile node rebuilt from its
	// write-ahead journal (emitted when the recovered node binds to its
	// cluster) or a base cluster replaying its durable log. Replayed
	// carries the journal records replayed, DroppedTail the trailing
	// uncommitted transactions discarded, Cause is CauseTornTail when the
	// journal ended in a partially written line, and Detail names the scan
	// mode ("strict" or "salvage").
	PhaseRecover Phase = "recover"
	// PhaseCheckpoint is a durable base cluster writing a fresh checkpoint
	// segment and truncating its journal (DESIGN.md §14); Saved carries
	// the number of current-window entries captured in the segment.
	PhaseCheckpoint Phase = "checkpoint"
	// PhaseMerge is the whole-reconnect summary span: its Dur is the
	// end-to-end reconnect latency, its tallies the final outcome.
	PhaseMerge Phase = "merge"
)

// Cause classifies why an admission attempt retried or a reconnect fell
// back to reprocessing.
type Cause string

// Retry and fallback causes.
const (
	// CauseNone: the phase succeeded.
	CauseNone Cause = ""
	// CauseStructChanged: the base prefix changed shape (interior insert or
	// window advance) between snapshot and admission.
	CauseStructChanged Cause = "struct-changed"
	// CauseExtensionConflict: base transactions committed since the
	// snapshot touch the merge's footprint.
	CauseExtensionConflict Cause = "extension-conflict"
	// CauseWindowExpired: the mobile connected after its time window
	// closed.
	CauseWindowExpired Cause = "window-expired"
	// CauseOriginInvalid: under Strategy 1, the state at the node's
	// checkout position changed (the Figure 2 anomaly).
	CauseOriginInvalid Cause = "origin-invalidated"
	// CauseInsertConflict: under Strategy 1, committed base transactions
	// after the checkout point conflict with the forwarded updates.
	CauseInsertConflict Cause = "insert-conflict"
	// CauseTornTail: a crash recovery found its journal ending in a
	// partially written (torn) final line; the tail was dropped.
	CauseTornTail Cause = "torn-tail"
)

// Event is one observed span or mark on the reconnect path. Fields beyond
// Phase are populated when they are meaningful for the phase; a zero field
// means "not applicable", never "measured zero" (except Dur on
// instantaneous marks).
type Event struct {
	// Mobile is the reconnecting node's ID.
	Mobile string
	// Seq is the cluster-wide merge sequence number grouping every event
	// of one reconnect (0 for events outside a merge, e.g. checkout).
	Seq int64
	// Phase names the stage.
	Phase Phase
	// Attempt is the 1-based validate-and-admit attempt (admit and
	// prepare-phase events of the optimistic pipeline; 0 elsewhere).
	Attempt int
	// Dur is the span duration (0 for instantaneous marks).
	Dur time.Duration
	// Cause carries the retry or fallback cause.
	Cause Cause
	// Detail names the algorithm that ran (rewriter, pruner, back-out
	// strategy) where one applies.
	Detail string
	// Saved, BackedOut, Affected, Reexecuted, Failed tally transactions
	// for the phases that decide them (rewrite, merge, fallback).
	Saved, BackedOut, Affected, Reexecuted, Failed int
	// Lag is the number of queued follower updates applied (propagate).
	Lag int
	// Replayed and DroppedTail tally a crash recovery (recover): journal
	// records replayed and trailing uncommitted transactions discarded.
	Replayed, DroppedTail int
	// NewVertices and NewEdges size an incremental graph extension
	// (graph-extend only).
	NewVertices, NewEdges int
	// Batch is the number of merges admitted in the same admission critical
	// section (admit events of an installed merge under batched admission;
	// 0 when the attempt failed validation or batching is disabled).
	Batch int
	// Shard is the 1-based shard that emitted the event under a sharded
	// base tier (replica.ShardedBase). 0 means the event came from an
	// unsharded cluster or from the cross-shard coordination path, whose
	// events carry Detail "cross-shard" instead.
	Shard int
	// Err is the error text when the phase failed.
	Err string
}

// Observer receives protocol events. Implementations must be safe for
// concurrent use: concurrent reconnects emit concurrently. The protocol
// never calls Observe while holding the cluster mutex, so an observer may
// block briefly — but it runs inline on the reconnect path, so it should
// stay cheap (fold into counters, append to a buffer) and must not call
// back into the cluster it observes.
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe calls f(ev).
func (f ObserverFunc) Observe(ev Event) { f(ev) }

// Multi fans events out to every observer in order. Nil entries are
// skipped; a nil or empty list yields a nil Observer (the fast path).
func Multi(obs ...Observer) Observer {
	flat := make(multi, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			flat = append(flat, o)
		}
	}
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	default:
		return flat
	}
}

type multi []Observer

func (m multi) Observe(ev Event) {
	for _, o := range m {
		o.Observe(ev)
	}
}

// Registry returns the first registry exposed by a member observer, so a
// Multi wrapping a Metrics still serves metric dumps.
func (m multi) Registry() *Registry {
	for _, o := range m {
		if p, ok := o.(RegistryProvider); ok {
			if r := p.Registry(); r != nil {
				return r
			}
		}
	}
	return nil
}

// Bind stamps every event passing through with the merge identity (mobile
// ID and sequence number), so instrumentation deep inside internal/merge
// needs no identity plumbing of its own. Fields already set are kept.
func Bind(o Observer, mobile string, seq int64) Observer {
	if o == nil {
		return nil
	}
	return ObserverFunc(func(ev Event) {
		if ev.Mobile == "" {
			ev.Mobile = mobile
		}
		if ev.Seq == 0 {
			ev.Seq = seq
		}
		o.Observe(ev)
	})
}

// RegistryProvider is implemented by observers that expose a metrics
// registry (Metrics, and Multi when a member does). The replication
// substrate uses it to locate the registry behind a Config.Observer when
// serving metric dumps.
type RegistryProvider interface {
	Registry() *Registry
}

// RegistryOf extracts the registry behind an observer, or nil.
func RegistryOf(o Observer) *Registry {
	if p, ok := o.(RegistryProvider); ok {
		return p.Registry()
	}
	return nil
}
