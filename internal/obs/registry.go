package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic tally.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be >= 0 for the Prometheus contract; negative deltas
// are not checked).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current tally.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency histogram bucket upper bounds, in
// seconds: 5µs to 1s, roughly half-decade steps — reconnect phases span
// microseconds (snapshot) to tens of milliseconds (big rewrites).
var DefBuckets = []float64{
	5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 1,
}

// Histogram is a fixed-bucket latency histogram. Observations are
// lock-free: each bucket is an atomic counter and the sum accumulates in
// integer nanoseconds, so concurrent merge phases record latencies without
// contending.
type Histogram struct {
	bounds []float64      // upper bounds, seconds, sorted ascending
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sumNs  atomic.Int64
	count  atomic.Int64
}

// Observe records a value in seconds.
func (h *Histogram) Observe(seconds float64) {
	i := sort.SearchFloat64s(h.bounds, seconds)
	h.counts[i].Add(1)
	h.sumNs.Add(int64(seconds * 1e9))
	h.count.Add(1)
}

// ObserveDuration records a span duration.
func (h *Histogram) ObserveDuration(d time.Duration) {
	i := sort.SearchFloat64s(h.bounds, d.Seconds())
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.count.Add(1)
}

// Snapshot returns a consistent-enough copy for reporting (buckets are
// read individually; a concurrent Observe may straddle the reads, which is
// acceptable for monitoring output).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    float64(h.sumNs.Load()) / 1e9,
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time histogram copy.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds in seconds; Counts has one extra
	// trailing entry for the +Inf bucket. Counts are per-bucket (not
	// cumulative; the Prometheus dump accumulates them).
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Registry is a named collection of counters, gauges and histograms.
// Metric names may carry Prometheus-style labels inline — Counter(`x`) and
// Counter(`x{phase="rewrite"}`) are distinct series of the same family —
// via the Label helper. Get-or-create lookups take a mutex; the returned
// metric handles are lock-free, so hot paths should hold onto them.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds (nil = DefBuckets) on first use. Later calls ignore buckets.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if buckets == nil {
			buckets = DefBuckets
		}
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counts)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Snapshot is an expvar-style point-in-time copy of a registry; it
// marshals directly to JSON for /debug/tiermerge-style endpoints.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Label appends Prometheus-style labels to a metric name, merging with any
// labels already present: Label(`x{a="1"}`, "b", "2") == `x{a="1",b="2"}`.
// Keys and values are used verbatim; callers pass literals.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	if strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + b.String() + "}"
	}
	return name + "{" + b.String() + "}"
}

// baseName strips inline labels: `x{a="1"}` -> `x`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format: one `# TYPE` line per metric family, series sorted by name,
// histograms expanded into cumulative `_bucket{le=...}`, `_sum` and
// `_count` series.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	typed := make(map[string]string) // family -> TYPE already emitted
	emitType := func(name, kind string) string {
		family := baseName(name)
		if typed[family] == kind {
			return ""
		}
		typed[family] = kind
		return fmt.Sprintf("# TYPE %s %s\n", family, kind)
	}
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		p("%s", emitType(name, "counter"))
		p("%s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		p("%s", emitType(name, "gauge"))
		p("%s %d\n", name, s.Gauges[name])
	}
	histNames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := s.Histograms[name]
		p("%s", emitType(name, "histogram"))
		bucket := suffixed(name, "_bucket")
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			p("%s %d\n", Label(bucket, "le", fmt.Sprintf("%g", bound)), cum)
		}
		cum += h.Counts[len(h.Bounds)]
		p("%s %d\n", Label(bucket, "le", "+Inf"), cum)
		p("%s %g\n", suffixed(name, "_sum"), h.Sum)
		p("%s %d\n", suffixed(name, "_count"), h.Count)
	}
	return err
}

// suffixed appends a suffix to the metric family, keeping inline labels:
// suffixed(`x{a="1"}`, "_sum") == `x_sum{a="1"}`.
func suffixed(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
