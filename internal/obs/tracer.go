package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Tracer is the Observer that records the raw event stream for per-merge
// phase breakdowns: where each reconnect spent its time, how many
// admission attempts it took and why they retried, and what the merge
// decided. cmd/tiermerge trace replays a scenario under a Tracer and
// prints the result.
type Tracer struct {
	mu     sync.Mutex
	events []Event
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Observe appends the event (arrival order; events of one merge form an
// ordered subsequence because each merge emits sequentially).
func (t *Tracer) Observe(ev Event) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Events returns a copy of every recorded event in arrival order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Reset discards all recorded events.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.events = nil
	t.mu.Unlock()
}

// MergeTrace groups the events of one reconnect (one merge sequence
// number) in emission order.
type MergeTrace struct {
	Mobile string
	Seq    int64
	Events []Event
}

// Merges groups recorded merge-scoped events (Seq > 0) by reconnect,
// ordered by sequence number.
func (t *Tracer) Merges() []MergeTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	byID := make(map[int64]*MergeTrace)
	order := []int64{}
	for _, ev := range t.events {
		if ev.Seq == 0 {
			continue
		}
		mt, ok := byID[ev.Seq]
		if !ok {
			mt = &MergeTrace{Mobile: ev.Mobile, Seq: ev.Seq}
			byID[ev.Seq] = mt
			order = append(order, ev.Seq)
		}
		mt.Events = append(mt.Events, ev)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]MergeTrace, len(order))
	for i, seq := range order {
		out[i] = *byID[seq]
	}
	return out
}

// Outcome summarizes the trace's final state from its summary event:
// "merged", "fallback(<cause>)" or "incomplete".
func (mt MergeTrace) Outcome() string {
	for i := len(mt.Events) - 1; i >= 0; i-- {
		switch ev := mt.Events[i]; ev.Phase {
		case PhaseFallback:
			return fmt.Sprintf("fallback(%s)", ev.Cause)
		case PhaseMerge:
			if ev.Err != "" {
				return "error"
			}
		}
	}
	for _, ev := range mt.Events {
		if ev.Phase == PhaseMerge {
			return "merged"
		}
	}
	// A crash recovery is its own span group: it happens before the
	// recovered node's next reconnect (which gets its own sequence number).
	for _, ev := range mt.Events {
		if ev.Phase == PhaseRecover {
			return "recovered"
		}
	}
	return "incomplete"
}

// Format writes a human-readable per-phase breakdown of one reconnect.
func (mt MergeTrace) Format(w io.Writer) {
	total := mt.totalDur()
	fmt.Fprintf(w, "merge #%d mobile=%s outcome=%s\n", mt.Seq, mt.Mobile, mt.Outcome())
	for _, ev := range mt.Events {
		var b strings.Builder
		fmt.Fprintf(&b, "  %-14s", ev.Phase)
		if ev.Attempt > 0 {
			fmt.Fprintf(&b, " attempt=%d", ev.Attempt)
		}
		if ev.Dur > 0 {
			fmt.Fprintf(&b, " %12v", ev.Dur)
			if total > 0 && ev.Phase != PhaseMerge {
				fmt.Fprintf(&b, " (%4.1f%%)", 100*float64(ev.Dur)/float64(total))
			}
		}
		if ev.Cause != CauseNone {
			fmt.Fprintf(&b, " cause=%s", ev.Cause)
		}
		if ev.Detail != "" {
			fmt.Fprintf(&b, " [%s]", ev.Detail)
		}
		if ev.Saved+ev.BackedOut+ev.Affected > 0 {
			fmt.Fprintf(&b, " saved=%d backedout=%d affected=%d", ev.Saved, ev.BackedOut, ev.Affected)
		}
		if ev.Reexecuted+ev.Failed > 0 {
			fmt.Fprintf(&b, " reexecuted=%d failed=%d", ev.Reexecuted, ev.Failed)
		}
		if ev.Phase == PhaseRecover {
			fmt.Fprintf(&b, " replayed=%d droppedtail=%d", ev.Replayed, ev.DroppedTail)
		}
		if ev.Err != "" {
			fmt.Fprintf(&b, " err=%q", ev.Err)
		}
		fmt.Fprintln(w, b.String())
	}
}

// totalDur is the whole-reconnect duration from the summary event, used to
// express each phase as a percentage.
func (mt MergeTrace) totalDur() (total int64) {
	for _, ev := range mt.Events {
		if ev.Phase == PhaseMerge && ev.Dur > 0 {
			return int64(ev.Dur)
		}
	}
	return 0
}
