package prune

import (
	"tiermerge/internal/expr"
	"tiermerge/internal/model"
)

// exprExpr aliases the expression interface for compact test helpers.
type exprExpr = expr.Expr

// addVar builds x + y (as an update expression for x).
func addVar(x, y model.Item) expr.Expr {
	return expr.Add(expr.Var(x), expr.Var(y))
}

// addConst builds x + c (as an update expression for x).
func addConst(x model.Item, c model.Value) expr.Expr {
	return expr.Add(expr.Var(x), expr.Const(c))
}
