// Package prune implements Section 6: extracting the repaired history's
// effect from a rewritten history. Two approaches are provided, exactly as
// in the paper:
//
//   - the compensation approach (Section 6.1): execute the fixed
//     compensating transaction T^(-1,F) of every transaction in H_e − H_r,
//     in reverse order, starting from the final state (Definition 5,
//     Lemma 4);
//   - the undo approach (Section 6.2): physically undo every transaction in
//     H_e − H_r from logged before-images, then execute the undo-repair
//     actions built by Algorithm 3 for the affected transactions that were
//     saved into H_r.
//
// Both approaches land on the same state the repaired history would produce
// if re-executed from scratch (Theorem 5) — without re-executing the saved
// transactions, which is the whole point of the merging protocol.
package prune

import (
	"fmt"
	"sort"

	"tiermerge/internal/expr"
	"tiermerge/internal/model"
	"tiermerge/internal/rewrite"
	"tiermerge/internal/tx"
)

// ByCompensation prunes the rewritten history by fixed compensation: for
// each transaction in H_e − H_r, in reverse of their original order, it
// executes the fixed compensating transaction T^(-1,F) (the regular
// compensator with the same fix, Definition 5) starting from final (the
// final state of H^s, which equals the final state of H_e). It returns the
// repaired state together with the compensators it ran.
//
// Lemma 4 guarantees correctness because every fix produced by the
// rewriting algorithms satisfies F ∩ writeset = ∅. A NotInvertibleError
// from any transaction aborts the pruning; callers fall back to ByUndo.
func ByCompensation(r *rewrite.Result, final model.State) (model.State, []*tx.Transaction, error) {
	cur := final.Clone()
	comps := make([]*tx.Transaction, 0, r.Rewritten.Len()-r.PrefixLen)
	for i := r.Rewritten.Len() - 1; i >= r.PrefixLen; i-- {
		ent := r.Rewritten.Entries[i]
		if !ent.Fix.Items().Disjoint(ent.T.StaticWriteSet()) {
			return nil, nil, fmt.Errorf(
				"prune: fix of %s pins written items; Lemma 4 precondition violated", ent.T.ID)
		}
		inv, err := tx.Invert(ent.T)
		if err != nil {
			return nil, nil, fmt.Errorf("prune: compensate %s: %w", ent.T.ID, err)
		}
		if _, err := inv.ExecInPlace(cur, ent.Fix); err != nil {
			return nil, nil, fmt.Errorf("prune: run %s: %w", inv.ID, err)
		}
		comps = append(comps, inv)
	}
	return cur, comps, nil
}

// URA is an undo-repair action built by Algorithm 3 for one saved affected
// transaction.
type URA struct {
	// For is the affected transaction the action repairs.
	For *tx.Transaction
	// Action is the repair transaction to execute (possibly empty-bodied
	// when the whole effect survived the undo).
	Action *tx.Transaction
}

// ByUndo prunes the rewritten history by the undo approach: it restores the
// logged before-images of every transaction in H_e − H_r (in reverse of
// their original order), builds the undo-repair actions of Algorithm 3 for
// the affected transactions saved into H_r, and executes them in H_r order.
// It returns the repaired state and the actions it ran.
func ByUndo(r *rewrite.Result, final model.State) (model.State, []URA, error) {
	cur := final.Clone()
	a := r.Original

	// Undone set: original positions of the transactions kept in the tail.
	undone := make(map[int]bool)
	for i := r.PrefixLen; i < r.Rewritten.Len(); i++ {
		undone[r.OrigPos[i]] = true
	}
	// Physical undo in reverse original order: each item ends at the
	// before-image of its earliest undone writer.
	undoOrder := make([]int, 0, len(undone))
	for p := range undone {
		undoOrder = append(undoOrder, p)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(undoOrder)))
	for _, p := range undoOrder {
		for it, v := range a.Effects[p].Before {
			cur.Set(it, v)
		}
	}

	// writersBAG[it] lists the original positions in B ∪ AG that updated it.
	inBAG := make(map[int]bool)
	for p := range r.Bad {
		inBAG[p] = true
	}
	for p := range r.Affected {
		inBAG[p] = true
	}
	writersBAG := make(map[model.Item][]int)
	for p := range inBAG {
		for it := range a.Effects[p].WriteSet {
			writersBAG[it] = append(writersBAG[it], p)
		}
	}
	for it := range writersBAG {
		sort.Ints(writersBAG[it])
	}

	// Undo-repair actions for the affected transactions in H_r, in H_r
	// order (which preserves their original order).
	var uras []URA
	for i := 0; i < r.PrefixLen; i++ {
		p := r.OrigPos[i]
		if !r.Affected[p] {
			continue
		}
		action, err := BuildURA(r, p, writersBAG)
		if err != nil {
			return nil, nil, err
		}
		if _, err := action.ExecInPlace(cur, nil); err != nil {
			return nil, nil, fmt.Errorf("prune: run %s: %w", action.ID, err)
		}
		uras = append(uras, URA{For: a.H.Txn(p), Action: action})
	}
	return cur, uras, nil
}

// BuildURA is Algorithm 3: it constructs the undo-repair action for the
// affected transaction at original position k. writersBAG maps each item to
// the sorted original positions of its writers within B ∪ AG.
//
// Per the algorithm, an update statement x := f(x, y1...yn) of the affected
// transaction becomes:
//
//   - nothing, when no other transaction in B ∪ AG updated x (the undo
//     never disturbed x, so the original effect survives);
//   - x := afterstate.x, when only B ∪ AG transactions *after* k updated x
//     (their undo rolled x back to exactly k's original after-image);
//   - a re-execution of f with every operand that was untouched by earlier
//     B ∪ AG transactions (and by earlier statements of the action itself)
//     bound to its logged before-state value, otherwise read live — live
//     reads see values already repaired by earlier undo-repair actions.
//
// Read statements that no longer feed any update are dropped (step 3); in
// this engine read statements never affect state, so they are dropped
// wholesale.
func BuildURA(r *rewrite.Result, k int, writersBAG map[model.Item][]int) (*tx.Transaction, error) {
	a := r.Original
	t := a.H.Txn(k)
	before := a.BeforeState(k)
	after := a.AfterState(k)

	otherWriter := func(it model.Item) bool {
		for _, w := range writersBAG[it] {
			if w != k {
				return true
			}
		}
		return false
	}
	earlierWriter := func(it model.Item) bool {
		for _, w := range writersBAG[it] {
			if w >= k {
				break
			}
			return true
		}
		return false
	}

	var build func(body []tx.Stmt, written model.ItemSet) []tx.Stmt
	build = func(body []tx.Stmt, written model.ItemSet) []tx.Stmt {
		var out []tx.Stmt
		for _, s := range body {
			switch st := s.(type) {
			case *tx.ReadStmt:
				// dropped (step 3): reads bind no state in this engine
			case *tx.UpdateStmt, *tx.AssignStmt:
				var it model.Item
				var e expr.Expr
				if u, ok := st.(*tx.UpdateStmt); ok {
					it, e = u.Item, u.Expr
				} else {
					u := st.(*tx.AssignStmt)
					it, e = u.Item, u.Expr
				}
				switch {
				case !otherWriter(it):
					// case 1: effect survived the undo untouched
				case !earlierWriter(it):
					// case 2: undo rolled it back to k's own after-image
					out = append(out, tx.Assign(it, expr.Const(after.Get(it))))
					written.Add(it)
				default:
					// case 3: re-execute f with every stable operand
					// (including the target's own base read) bound to its
					// logged before-state value; unstable operands read
					// live, seeing values already repaired by the undo and
					// by earlier undo-repair actions.
					operands := expr.ItemsOf(e)
					operands.Add(it)
					bound := e
					for y := range operands {
						if !written.Has(y) && !earlierWriter(y) {
							bound = bound.Subst(y, expr.Const(before.Get(y)))
						}
					}
					out = append(out, tx.Assign(it, bound))
					written.Add(it)
				}
			case *tx.IfStmt:
				thenW := written.Clone()
				thenB := build(st.Then, thenW)
				elseW := written.Clone()
				elseB := build(st.Else, elseW)
				// Bind stable condition operands to their logged values so
				// the action takes the branch the repaired history takes.
				cond := st.Cond
				if len(thenB) > 0 || len(elseB) > 0 {
					out = append(out, tx.IfElse(cond, thenB, elseB))
				}
				for it := range thenW.Union(elseW) {
					written.Add(it)
				}
			default:
				// unreachable: validated statement set
			}
		}
		return out
	}

	body := build(t.Body, make(model.ItemSet))
	action := &tx.Transaction{
		ID:     "URA(" + t.ID + ")",
		Type:   t.Type,
		Kind:   t.Kind,
		Params: t.Params,
		Body:   body,
	}
	if err := action.Validate(); err != nil {
		return nil, fmt.Errorf("prune: URA for %s invalid: %w", t.ID, err)
	}
	return action, nil
}
