package prune

import (
	"testing"

	"tiermerge/internal/history"
	"tiermerge/internal/papertest"
	"tiermerge/internal/rewrite"
)

// TestUndoPrunesBlindWriteRewrite prunes an Algorithm1BW rewrite of the
// paper's Example 1 by undo and lands on the re-execution oracle. (With
// blind writes in the tail, compensation is unavailable — blind writes have
// no syntactic inverse — so undo is the mandated path.)
func TestUndoPrunesBlindWriteRewrite(t *testing.T) {
	e := papertest.NewExample1()
	a, err := history.Run(history.New(e.Mobile()...), e.Origin)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rewrite.Algorithm1BW(a, map[int]bool{2: true}) // B = {Tm3}
	if err != nil {
		t.Fatal(err)
	}
	got, uras, err := ByUndo(res, a.Final())
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := history.Run(res.Repaired(), e.Origin)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(oracle.Final()) {
		t.Errorf("undo state %s != oracle %s", got, oracle.Final())
	}
	// Algorithm1BW saves no affected transactions, so no undo-repair
	// actions are needed.
	if len(uras) != 0 {
		t.Errorf("URAs = %v, want none", uras)
	}
}
