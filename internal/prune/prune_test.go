package prune

import (
	"testing"

	"tiermerge/internal/history"
	"tiermerge/internal/model"
	"tiermerge/internal/papertest"
	"tiermerge/internal/rewrite"
	"tiermerge/internal/tx"
	"tiermerge/internal/workload"
)

func runH(t *testing.T, s0 model.State, txns ...*tx.Transaction) *history.Augmented {
	t.Helper()
	a, err := history.Run(history.New(txns...), s0)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// repairedOracle re-executes the repaired prefix from the origin — the
// ground truth both pruning approaches must hit.
func repairedOracle(t *testing.T, res *rewrite.Result, origin model.State) model.State {
	t.Helper()
	aug, err := history.Run(res.Repaired(), origin)
	if err != nil {
		t.Fatal(err)
	}
	return aug.Final()
}

// TestH4Compensation prunes the Algorithm 2 rewrite of H4 by fixed
// compensation and lands on the state of G2 G3 run from scratch.
func TestH4Compensation(t *testing.T) {
	h := papertest.NewH4()
	a := runH(t, h.Origin, h.Txns()...)
	res, err := rewrite.Algorithm2(a, map[int]bool{0: true}, rewrite.StaticDetector{})
	if err != nil {
		t.Fatal(err)
	}
	got, comps, err := ByCompensation(res, a.Final())
	if err != nil {
		t.Fatal(err)
	}
	want := repairedOracle(t, res, h.Origin)
	if !got.Equal(want) {
		t.Errorf("compensated state %s, want %s", got, want)
	}
	// Exactly one compensator ran: B1^(-1,{u}).
	if len(comps) != 1 || comps[0].ID != "B1⁻¹" {
		t.Errorf("compensators = %v", comps)
	}
	// Concrete values from the paper's narrative: u=10, x=10, z=30, y=0.
	wantConcrete := model.StateOf(map[model.Item]model.Value{"u": 10, "x": 10, "z": 30})
	if !got.Equal(wantConcrete) {
		t.Errorf("state = %s, want %s", got, wantConcrete)
	}
}

// TestH4Undo reproduces the undo narrative of Section 5.1: undoing B1 wipes
// G3's x increment, and the undo-repair action re-executes exactly
// x := x + 10.
func TestH4Undo(t *testing.T) {
	h := papertest.NewH4()
	a := runH(t, h.Origin, h.Txns()...)
	res, err := rewrite.Algorithm2(a, map[int]bool{0: true}, rewrite.StaticDetector{})
	if err != nil {
		t.Fatal(err)
	}
	got, uras, err := ByUndo(res, a.Final())
	if err != nil {
		t.Fatal(err)
	}
	want := repairedOracle(t, res, h.Origin)
	if !got.Equal(want) {
		t.Errorf("undo state %s, want %s", got, want)
	}
	if len(uras) != 1 || uras[0].For.ID != "G3" {
		t.Fatalf("URAs = %v, want one for G3", uras)
	}
	// The URA repairs x only: the z := z+30 statement is removed because no
	// other B∪AG transaction touched z (Algorithm 3 case 1), and x is
	// re-derived additively (case 3).
	body := uras[0].Action.Body
	if len(body) != 1 {
		t.Fatalf("URA body = %v, want exactly the x repair", body)
	}
	ws := uras[0].Action.StaticWriteSet()
	if !ws.Has("x") || ws.Has("z") {
		t.Errorf("URA writes %v, want {x}", ws)
	}
}

// TestURACase2AfterImage exercises Algorithm 3's second case: the affected
// transaction's item is clobbered only by a LATER bad transaction, so the
// repair restores the after-image directly.
func TestURACase2AfterImage(t *testing.T) {
	// G1 (affected via r): reads r, writes x. B2 (bad, later) writes x and r.
	g1 := tx.MustNew("G1", tx.Tentative,
		tx.Update("x", expr2Add("x", "r")),
	)
	b0 := tx.MustNew("B0", tx.Tentative, // bad, earlier: writes r so G1 is affected
		tx.Update("r", expr2AddConst("r", 5)),
	)
	b2 := tx.MustNew("B2", tx.Tentative, // bad, later: clobbers x
		tx.Update("x", expr2AddConst("x", 1000)),
	)
	origin := model.StateOf(map[model.Item]model.Value{"x": 1, "r": 2})
	a := runH(t, origin, b0, g1, b2)
	bad := map[int]bool{0: true, 2: true}
	res, err := rewrite.Algorithm2(a, bad, rewrite.StaticDetector{})
	if err != nil {
		t.Fatal(err)
	}
	// G1 is affected (reads r from B0) but saved by can-precede: its read
	// of r is the additive base? No — r is a general read here, so it can
	// only be saved if B0's write to r commutes. Both updates to r are
	// additive, but G1 reads r generally... so G1 may or may not be saved;
	// the assertion below adapts.
	got, _, err := ByUndo(res, a.Final())
	if err != nil {
		t.Fatal(err)
	}
	want := repairedOracle(t, res, origin)
	if !got.Equal(want) {
		t.Errorf("undo state %s, want %s", got, want)
	}
}

// TestUndoEqualsCompensationEqualsOracle is the Theorem 5 property test: on
// random additive-heavy workloads, pruning by undo, pruning by compensation
// and re-execution of the repaired history all agree.
func TestUndoEqualsCompensationEqualsOracle(t *testing.T) {
	gen := workload.NewGenerator(workload.Config{Seed: 61, Items: 8, PCommutative: 1.0})
	origin := gen.OriginState()
	for trial := 0; trial < 200; trial++ {
		a, err := gen.RunHistory(tx.Tentative, 8, origin)
		if err != nil {
			t.Fatal(err)
		}
		bad := gen.RandomBadSet(8, 0.25)
		res, err := rewrite.Algorithm2(a, bad, rewrite.StaticDetector{})
		if err != nil {
			t.Fatal(err)
		}
		want := repairedOracle(t, res, origin)
		undoState, _, err := ByUndo(res, a.Final())
		if err != nil {
			t.Fatalf("trial %d: undo: %v", trial, err)
		}
		if !undoState.Equal(want) {
			t.Fatalf("trial %d: undo %s != oracle %s\nhistory %s\nbad %v\nsaved %v",
				trial, undoState, want, a.H, bad, res.SavedIDs())
		}
		compState, _, err := ByCompensation(res, a.Final())
		if err != nil {
			// Purely additive workloads are always invertible except for
			// guarded Bonus bodies whose condition gates a write — those
			// are invertible too (condition reads differ from writes). Any
			// error is a real failure.
			t.Fatalf("trial %d: compensation: %v", trial, err)
		}
		if !compState.Equal(want) {
			t.Fatalf("trial %d: compensation %s != oracle %s", trial, compState, want)
		}
	}
}

// TestUndoHandlesNonInvertible checks that mixed workloads (setprice,
// accrue, restock — no compensators) still prune correctly via undo, which
// is the fallback the paper prescribes.
func TestUndoHandlesNonInvertible(t *testing.T) {
	gen := workload.NewGenerator(workload.Config{Seed: 71, Items: 8, PCommutative: 0.4})
	origin := gen.OriginState()
	for trial := 0; trial < 200; trial++ {
		a, err := gen.RunHistory(tx.Tentative, 8, origin)
		if err != nil {
			t.Fatal(err)
		}
		bad := gen.RandomBadSet(8, 0.25)
		for _, mk := range []func() (*rewrite.Result, error){
			func() (*rewrite.Result, error) { return rewrite.Algorithm1(a, bad) },
			func() (*rewrite.Result, error) {
				return rewrite.Algorithm2(a, bad, rewrite.StaticDetector{})
			},
		} {
			res, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			want := repairedOracle(t, res, origin)
			got, _, err := ByUndo(res, a.Final())
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d (%s): undo %s != oracle %s\nhistory %s\nbad %v saved %v",
					trial, res.Algorithm, got, want, a.H, bad, res.SavedIDs())
			}
		}
	}
}

// TestCompensationRefusesFixOnWrittenItem guards the Lemma 4 precondition.
func TestCompensationRefusesFixOnWrittenItem(t *testing.T) {
	h := papertest.NewH4()
	a := runH(t, h.Origin, h.Txns()...)
	res, err := rewrite.Algorithm1(a, map[int]bool{0: true})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a fix to pin a written item.
	res.Rewritten.Entries[1].Fix = tx.Fix{"x": 1}
	if _, _, err := ByCompensation(res, a.Final()); err == nil {
		t.Error("compensation accepted a fix pinning a written item")
	}
}

// expr helpers keeping the test bodies compact.
func expr2Add(x, y model.Item) exprExpr { return addVar(x, y) }

func expr2AddConst(x model.Item, c model.Value) exprExpr { return addConst(x, c) }
