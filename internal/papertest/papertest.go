// Package papertest builds executable versions of the paper's worked
// examples, shared by the test suites, the benchmarks and the quickstart
// example. Each constructor documents how the executable profile realizes
// the paper's declared read/write sets.
package papertest

import (
	"tiermerge/internal/expr"
	"tiermerge/internal/model"
	"tiermerge/internal/tx"
)

// Example1 is the paper's Example 1 / Figure 1. Declared footprints:
//
//	READSET(Tm1) = WRITESET(Tm1) = {d1, d2}
//	READSET(Tm2) = {d2, d3},        WRITESET(Tm2) = {d3, d4, d5, d6}
//	READSET(Tm3) = {d4, d5, d6},    WRITESET(Tm3) = {d4, d6}
//	READSET(Tm4) = WRITESET(Tm4) = {d6}
//	READSET(Tb1) = WRITESET(Tb1) = {d5}
//	READSET(Tb2) = {d1, d5},        WRITESET(Tb2) = {}
//
// Tm2's writes to d4, d5, d6 are blind (its read set excludes them), which
// is why this example runs through the closure-based merge rather than the
// rewriting algorithms. Note on fidelity: the OCR'd paper text lists no
// READSET for Tm3, but its Figure 1 walk-through states "Tm3 read the item
// d5 which is then updated by Tb1", so d5 (with the non-blind bases d4, d6)
// must be in Tm3's read set; the sets above are the unique completion
// consistent with the figure's cycle.
type Example1 struct {
	Tm1, Tm2, Tm3, Tm4 *tx.Transaction
	Tb1, Tb2           *tx.Transaction
	Origin             model.State
}

// NewExample1 constructs the example.
func NewExample1() *Example1 {
	e := &Example1{
		Tm1: tx.MustNew("Tm1", tx.Tentative,
			tx.Update("d1", expr.Add(expr.Var("d1"), expr.Const(1))),
			tx.Update("d2", expr.Add(expr.Var("d2"), expr.Const(1))),
		),
		Tm2: tx.MustNew("Tm2", tx.Tentative,
			tx.Update("d3", expr.Add(expr.Var("d3"), expr.Var("d2"))),
			tx.Assign("d4", expr.Const(7)),
			tx.Assign("d5", expr.Const(9)),
			tx.Assign("d6", expr.Const(11)),
		),
		Tm3: tx.MustNew("Tm3", tx.Tentative,
			tx.Read("d5"),
			tx.Update("d4", expr.Add(expr.Var("d4"), expr.Var("d5"))),
			tx.Update("d6", expr.Add(expr.Var("d6"), expr.Const(1))),
		),
		Tm4: tx.MustNew("Tm4", tx.Tentative,
			tx.Update("d6", expr.Add(expr.Var("d6"), expr.Const(1))),
		),
		Tb1: tx.MustNew("Tb1", tx.Base,
			tx.Update("d5", expr.Add(expr.Var("d5"), expr.Const(100))),
		),
		Tb2: tx.MustNew("Tb2", tx.Base,
			tx.Read("d1"),
			tx.Read("d5"),
		),
		Origin: model.StateOf(map[model.Item]model.Value{
			"d1": 10, "d2": 20, "d3": 30, "d4": 40, "d5": 50, "d6": 60,
		}),
	}
	return e
}

// Mobile returns Hm = Tm1 Tm2 Tm3 Tm4.
func (e *Example1) Mobile() []*tx.Transaction {
	return []*tx.Transaction{e.Tm1, e.Tm2, e.Tm3, e.Tm4}
}

// BaseTxns returns Hb = Tb1 Tb2.
func (e *Example1) BaseTxns() []*tx.Transaction {
	return []*tx.Transaction{e.Tb1, e.Tb2}
}

// H4 is the motivating example of Section 5.1:
//
//	H4: B1 G2 G3
//	B1: if u > 10 then x := x + 100, y := y - 20
//	G2: u := u - 20
//	G3: x := x + 10, z := z + 30
//
// Algorithm 1 yields G2 B1^{u} G3 (G3 sacrificed); Algorithm 2 additionally
// saves G3 because G3 can precede B1^{u}.
type H4 struct {
	B1, G2, G3 *tx.Transaction
	Origin     model.State
}

// NewH4 constructs the example with u > 10 so B1's branch fires, matching
// the paper's narrative (undoing B1 must wipe G3's x increment).
func NewH4() *H4 {
	return &H4{
		// B1 exactly as printed: both updates guarded by u > 10.
		B1: tx.MustNew("B1", tx.Tentative,
			tx.If(expr.GT(expr.Var("u"), expr.Const(10)),
				tx.Update("x", expr.Add(expr.Var("x"), expr.Const(100))),
				tx.Update("y", expr.Sub(expr.Var("y"), expr.Const(20))),
			),
		),
		G2: tx.MustNew("G2", tx.Tentative,
			tx.Update("u", expr.Sub(expr.Var("u"), expr.Const(20))),
		),
		G3: tx.MustNew("G3", tx.Tentative,
			tx.Update("x", expr.Add(expr.Var("x"), expr.Const(10))),
			tx.Update("z", expr.Add(expr.Var("z"), expr.Const(30))),
		),
		Origin: model.StateOf(map[model.Item]model.Value{
			"u": 30, "x": 0, "y": 0, "z": 0,
		}),
	}
}

// Txns returns H4's transactions in history order.
func (h *H4) Txns() []*tx.Transaction { return []*tx.Transaction{h.B1, h.G2, h.G3} }

// H5 is the fix-interference example of Section 5.1:
//
//	H5: s0 T1 s1 T2 s2 T3 s3
//	T1: if y > 200 then x := x + 100 else x := x * 2
//	T2: y := y + 100
//	T3: if y > 200 then x := x - 10 else x := x / 2
//
// T3 commutes backward through T1 over the reals, but NOT through T1^{F1}
// with F1 = {y}: with x = 100 and fix value y = 150, T2 T1^{F1} T3 ends with
// x = 190 while T2 T3 T1^{F1} ends with x = 180.
type H5 struct {
	T1, T2, T3 *tx.Transaction
	Origin     model.State
}

// NewH5 constructs the example. The origin y = 150 reproduces the paper's
// witness when T1 carries fix {y=150}.
func NewH5() *H5 {
	return &H5{
		T1: tx.MustNew("T1", tx.Tentative,
			tx.IfElse(expr.GT(expr.Var("y"), expr.Const(200)),
				[]tx.Stmt{tx.Update("x", expr.Add(expr.Var("x"), expr.Const(100)))},
				[]tx.Stmt{tx.Update("x", expr.Mul(expr.Var("x"), expr.Const(2)))},
			),
		),
		T2: tx.MustNew("T2", tx.Tentative,
			tx.Update("y", expr.Add(expr.Var("y"), expr.Const(100))),
		),
		T3: tx.MustNew("T3", tx.Tentative,
			tx.IfElse(expr.GT(expr.Var("y"), expr.Const(200)),
				[]tx.Stmt{tx.Update("x", expr.Sub(expr.Var("x"), expr.Const(10)))},
				[]tx.Stmt{tx.Update("x", expr.Div(expr.Var("x"), expr.Const(2)))},
			),
		),
		Origin: model.StateOf(map[model.Item]model.Value{"x": 100, "y": 150}),
	}
}

// Separation is a three-transaction history on which the three rewriters
// save strictly nested sets, demonstrating Theorems 3 and 4 together:
//
//	H: B1 G2 G3
//	B1: if u > 10 then x := x + 100   (reads u, writes x)
//	G2: u := u - 20                   (writes u)
//	G3: u := u - 5; x := x + 10       (writes u and x)
//
// With B = {B1}: the closure/Algorithm 1 prefix is {G2} (G3 is affected
// through x); CBTR saves nothing (both G2 and G3 write u, which B1 reads
// with no fix to pin it); Algorithm 2 saves {G2, G3} (after G2's can-follow
// move pins u in B1's fix, G3 can precede B1^{u}).
type Separation struct {
	B1, G2, G3 *tx.Transaction
	Origin     model.State
}

// NewSeparation constructs the example.
func NewSeparation() *Separation {
	return &Separation{
		B1: tx.MustNew("B1", tx.Tentative,
			tx.If(expr.GT(expr.Var("u"), expr.Const(10)),
				tx.Update("x", expr.Add(expr.Var("x"), expr.Const(100))),
			),
		),
		G2: tx.MustNew("G2", tx.Tentative,
			tx.Update("u", expr.Sub(expr.Var("u"), expr.Const(20))),
		),
		G3: tx.MustNew("G3", tx.Tentative,
			tx.Update("u", expr.Sub(expr.Var("u"), expr.Const(5))),
			tx.Update("x", expr.Add(expr.Var("x"), expr.Const(10))),
		),
		Origin: model.StateOf(map[model.Item]model.Value{"u": 30, "x": 0}),
	}
}

// Txns returns the history order B1 G2 G3.
func (s *Separation) Txns() []*tx.Transaction { return []*tx.Transaction{s.B1, s.G2, s.G3} }
