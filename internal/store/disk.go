// The Disk engine: version chains plus a segmented durable log. The log is
// a pair of files per generation,
//
//	ckpt-<gen>.wal — a complete, self-contained base journal: the window
//	                 origin (checkout record) followed by every entry of
//	                 the window committed before the checkpoint. Written to
//	                 a temp file, fsynced and atomically renamed into
//	                 place; never appended to afterwards.
//	tail-<gen>.wal — the live continuation: every commit and window
//	                 advance since the checkpoint, appended through the
//	                 buffered tail (Write) and forced by Sync. Its records
//	                 are an independent wal stream numbered from 1.
//
// Recovery replays checkpoint-then-tail; rotation (a new checkpoint)
// deletes the previous generation — the WAL truncation that keeps the log
// proportional to one checkpoint interval instead of the cluster's
// lifetime. Crashes between rotation steps leave either the old pair, both
// pairs, or the new pair with a missing tail; OpenDisk picks the newest
// generation with a readable checkpoint and sweeps the rest.
//
// Lock discipline: Write only appends to an in-memory buffer and is safe
// under the cluster mutex (group commit: many committers buffer under the
// lock, the first Sync outside it flushes and fsyncs for all). Sync,
// BeginRotate/CompleteRotate and Close do the file I/O and must never run
// while the cluster mutex is held — tiermergelint's blocking analysis now
// counts package os file I/O as blocking and enforces exactly that.
package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"tiermerge/internal/obs"
)

// Disk is the durable engine: the in-memory version chains of Memory plus
// the segmented log the base journal persists through.
type Disk struct {
	table
	dir string

	// bmu guards the pending buffers — memory-only, safe under the cluster
	// mutex and safe to take nested under fmu (it never waits on anything).
	//
	//tiermerge:leafmutex
	bmu sync.Mutex
	// old holds bytes buffered before a BeginRotate that CompleteRotate
	// still has to flush to the outgoing tail; buf holds bytes destined for
	// the current (or, mid-rotation, the next) tail.
	old, buf []byte

	// fmu orders all file operations: flushes, fsyncs and rotation. A Sync
	// racing a rotation blocks here until the new tail is in place, so an
	// acknowledged commit is durable in exactly one generation. Blocking
	// file I/O under it is its charter — never take it under the cluster
	// mutex.
	//
	//tiermerge:iomutex
	fmu      sync.Mutex
	gen      int
	tail     *os.File
	unsynced bool

	mLogWritten, mLogTruncated *obs.Counter
}

// RotateStats reports one checkpoint rotation.
type RotateStats struct {
	// CheckpointBytes is the size of the new checkpoint file.
	CheckpointBytes int64
	// TruncatedBytes is the size of the deleted previous generation
	// (checkpoint + tail) — the log growth a rotation reclaimed.
	TruncatedBytes int64
}

// OpenDisk opens (or creates) a durable engine rooted at dir. A fresh
// directory starts at generation zero with no segments: callers write the
// initial checkpoint through Rotate before appending. On an existing
// directory the newest readable generation survives and stale generations
// and temp files are swept.
func OpenDisk(dir string, opts ...Option) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	d := &Disk{dir: dir}
	d.table.init(opts)
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	var gens []int
	for _, e := range names {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(filepath.Join(dir, name)) // torn rotation leftovers
		case strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".wal"):
			if g, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".wal")); err == nil {
				gens = append(gens, g)
			}
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(gens)))
	for i, g := range gens {
		if i == 0 {
			d.gen = g
			continue
		}
		// Stale generation (crash between rotation and cleanup): sweep it.
		os.Remove(d.ckptPath(g))
		os.Remove(d.tailPath(g))
	}
	if d.gen > 0 {
		f, err := os.OpenFile(d.tailPath(d.gen), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("store: open tail: %w", err)
		}
		d.tail = f
	}
	return d, nil
}

// Registry attaches reg for the tiermerge_store_* series, including the
// disk engine's log-byte counters.
func (d *Disk) Registry(reg *obs.Registry) {
	if reg == nil {
		return
	}
	WithRegistry(reg)(&d.table)
	d.mLogWritten = reg.Counter("tiermerge_store_log_bytes_written_total")
	d.mLogTruncated = reg.Counter("tiermerge_store_log_bytes_truncated_total")
}

// Dir returns the engine's root directory.
func (d *Disk) Dir() string { return d.dir }

// Generation returns the current segment generation (zero on a fresh
// directory, before the first Rotate).
func (d *Disk) Generation() int {
	d.fmu.Lock()
	defer d.fmu.Unlock()
	return d.gen
}

// Fresh reports whether the directory holds no segments yet.
func (d *Disk) Fresh() bool { return d.Generation() == 0 }

func (d *Disk) ckptPath(gen int) string { return segmentPath(d.dir, "ckpt", gen) }

func (d *Disk) tailPath(gen int) string { return segmentPath(d.dir, "tail", gen) }

func segmentPath(dir, kind string, gen int) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%08d.wal", kind, gen))
}

// CheckpointTempPath returns the temp path a rotation stages generation
// gen's checkpoint at before the atomic rename publishes it. Exposed so
// crash simulations can materialize a mid-rotation image; OpenDisk sweeps
// any such leftover.
func CheckpointTempPath(dir string, gen int) string {
	return segmentPath(dir, "ckpt", gen) + ".tmp"
}

// ReadSegments returns the current generation's checkpoint and tail
// contents for recovery. A missing tail (crash between checkpoint rename
// and tail creation) reads as empty.
func (d *Disk) ReadSegments() (ckpt, tail []byte, err error) {
	d.fmu.Lock()
	defer d.fmu.Unlock()
	if d.gen == 0 {
		return nil, nil, fmt.Errorf("store: %s holds no segments", d.dir)
	}
	ckpt, err = os.ReadFile(d.ckptPath(d.gen))
	if err != nil {
		return nil, nil, fmt.Errorf("store: read checkpoint: %w", err)
	}
	tail, err = os.ReadFile(d.tailPath(d.gen))
	if err != nil {
		if os.IsNotExist(err) {
			return ckpt, nil, nil
		}
		return nil, nil, fmt.Errorf("store: read tail: %w", err)
	}
	return ckpt, tail, nil
}

// TruncateTail cuts the live tail to n bytes — recovery drops a torn final
// line before appends resume.
func (d *Disk) TruncateTail(n int64) error {
	d.fmu.Lock()
	defer d.fmu.Unlock()
	if d.tail == nil {
		return fmt.Errorf("store: no live tail")
	}
	if err := d.tail.Truncate(n); err != nil {
		return fmt.Errorf("store: truncate tail: %w", err)
	}
	return d.tail.Sync()
}

// Write buffers p for the live tail. It never touches the file — commit
// paths call it while holding the cluster mutex; the bytes reach stable
// media at the next Sync.
//
//tiermerge:nonblocking
func (d *Disk) Write(p []byte) (int, error) {
	d.bmu.Lock()
	d.buf = append(d.buf, p...)
	d.bmu.Unlock()
	return len(p), nil
}

// Sync flushes buffered tail bytes to the live tail file and forces them
// to stable media. Concurrent committers group-commit: whoever enters
// first flushes everyone's buffered records (the buffer preserves commit
// order); later entrants find nothing pending and return after a cheap
// check. Must not be called under the cluster mutex.
//
//tiermerge:blocking
func (d *Disk) Sync() error {
	d.fmu.Lock()
	defer d.fmu.Unlock()
	return d.syncLocked()
}

func (d *Disk) syncLocked() error {
	d.bmu.Lock()
	pending := d.buf
	d.buf = nil
	d.bmu.Unlock()
	if len(pending) == 0 && !d.unsynced {
		return nil
	}
	if d.tail == nil {
		return fmt.Errorf("store: no live tail (rotate first)")
	}
	if len(pending) > 0 {
		if _, err := d.tail.Write(pending); err != nil {
			// Put the bytes back so a retried Sync does not lose them.
			d.bmu.Lock()
			d.buf = append(pending, d.buf...)
			d.bmu.Unlock()
			return fmt.Errorf("store: tail write: %w", err)
		}
		d.unsynced = true
		if d.mLogWritten != nil {
			d.mLogWritten.Add(int64(len(pending)))
		}
	}
	if err := d.tail.Sync(); err != nil {
		return fmt.Errorf("store: tail sync: %w", err)
	}
	d.unsynced = false
	return nil
}

// BeginRotate marks the checkpoint boundary: bytes buffered so far belong
// to the outgoing tail, bytes buffered after it to the next one. Memory
// only — callers invoke it inside the same critical section that snapshots
// the state the checkpoint will record, then call CompleteRotate outside
// the lock.
//
//tiermerge:nonblocking
func (d *Disk) BeginRotate() {
	d.bmu.Lock()
	d.old = append(d.old, d.buf...)
	d.buf = nil
	d.bmu.Unlock()
}

// CompleteRotate performs the file work of a checkpoint rotation: flush
// the outgoing tail, write the new checkpoint through writeCkpt (temp file,
// fsync, atomic rename), open a fresh tail, and delete the previous
// generation. A failure before the rename leaves the old generation intact
// and the buffered boundary bytes queued for it. Must not be called under
// the cluster mutex.
//
//tiermerge:blocking
func (d *Disk) CompleteRotate(writeCkpt func(w io.Writer) error) (RotateStats, error) {
	d.fmu.Lock()
	defer d.fmu.Unlock()
	var st RotateStats

	// Complete the outgoing generation: everything acknowledged before the
	// boundary must be durable in it before it becomes the fallback.
	d.bmu.Lock()
	old := d.old
	d.old = nil
	d.bmu.Unlock()
	if len(old) > 0 {
		if d.tail == nil {
			d.restoreOld(old)
			return st, fmt.Errorf("store: rotate: boundary bytes with no live tail")
		}
		if _, err := d.tail.Write(old); err != nil {
			d.restoreOld(old)
			return st, fmt.Errorf("store: rotate: flush outgoing tail: %w", err)
		}
		if d.mLogWritten != nil {
			d.mLogWritten.Add(int64(len(old)))
		}
	}
	if d.tail != nil {
		if err := d.tail.Sync(); err != nil {
			return st, fmt.Errorf("store: rotate: sync outgoing tail: %w", err)
		}
		d.unsynced = false
	}

	next := d.gen + 1
	tmp := CheckpointTempPath(d.dir, next)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return st, fmt.Errorf("store: rotate: %w", err)
	}
	if err := writeCkpt(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return st, fmt.Errorf("store: rotate: write checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return st, fmt.Errorf("store: rotate: sync checkpoint: %w", err)
	}
	if info, err := f.Stat(); err == nil {
		st.CheckpointBytes = info.Size()
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return st, fmt.Errorf("store: rotate: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp, d.ckptPath(next)); err != nil {
		os.Remove(tmp)
		return st, fmt.Errorf("store: rotate: publish checkpoint: %w", err)
	}
	syncDir(d.dir)

	newTail, err := os.OpenFile(d.tailPath(next), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		// The new checkpoint is already durable and complete; surface the
		// error but keep the generation switch (recovery reads it with an
		// empty tail).
		os.Remove(d.ckptPath(next))
		return st, fmt.Errorf("store: rotate: open new tail: %w", err)
	}

	// Truncation: reclaim the previous generation.
	st.TruncatedBytes += fileSize(d.ckptPath(d.gen)) + fileSize(d.tailPath(d.gen))
	if d.tail != nil {
		d.tail.Close()
	}
	os.Remove(d.ckptPath(d.gen))
	os.Remove(d.tailPath(d.gen))
	syncDir(d.dir)
	d.gen = next
	d.tail = newTail
	if d.mLogTruncated != nil {
		d.mLogTruncated.Add(st.TruncatedBytes)
	}
	if d.mLogWritten != nil {
		d.mLogWritten.Add(st.CheckpointBytes)
	}
	return st, nil
}

// restoreOld re-queues boundary bytes after a failed rotation so the next
// Sync or rotation attempt still flushes them, in order, before anything
// buffered later.
func (d *Disk) restoreOld(old []byte) {
	d.bmu.Lock()
	d.old = append(old, d.old...)
	d.bmu.Unlock()
}

// LogSize returns the on-disk size of the current generation (checkpoint
// plus tail), not counting unflushed buffered bytes.
func (d *Disk) LogSize() int64 {
	d.fmu.Lock()
	defer d.fmu.Unlock()
	if d.gen == 0 {
		return 0
	}
	return fileSize(d.ckptPath(d.gen)) + fileSize(d.tailPath(d.gen))
}

// Close flushes and closes the live tail.
//
//tiermerge:blocking
func (d *Disk) Close() error {
	d.fmu.Lock()
	defer d.fmu.Unlock()
	if d.tail == nil {
		return nil
	}
	err := d.syncLocked()
	if cerr := d.tail.Close(); err == nil {
		err = cerr
	}
	d.tail = nil
	return err
}

func fileSize(path string) int64 {
	info, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return info.Size()
}

// syncDir fsyncs a directory so a rename or unlink survives power loss;
// best-effort (some filesystems reject directory fsync).
func syncDir(dir string) {
	f, err := os.Open(dir)
	if err != nil {
		return
	}
	f.Sync()
	f.Close()
}
