// The Disk engine: version chains plus a segmented durable log. The log is
// a pair of files per generation,
//
//	ckpt-<gen>.wal — a complete, self-contained base journal: the window
//	                 origin (checkout record) followed by every entry of
//	                 the window committed before the checkpoint. Written to
//	                 a temp file, fsynced and atomically renamed into
//	                 place; never appended to afterwards.
//	tail-<gen>.wal — the live continuation: every commit and window
//	                 advance since the checkpoint, appended through the
//	                 buffered tail (Write) and forced by Sync. Its records
//	                 are an independent wal stream numbered from 1.
//
// Recovery replays checkpoint-then-tail; rotation (a new checkpoint)
// deletes the previous generation — the WAL truncation that keeps the log
// proportional to one checkpoint interval instead of the cluster's
// lifetime. Crashes between rotation steps leave either the old pair, both
// pairs, or the new pair with a missing tail; OpenDisk picks the newest
// generation with a readable checkpoint and sweeps the rest.
//
// Rotation gate: BeginRotate opens a pending-rotation window (rotDone)
// during which Sync parks — without holding any mutex — instead of
// flushing. Bytes buffered after the boundary are numbered for the NEXT
// tail stream; flushing them into the outgoing tail would plant a
// sequence restart mid-file that Strict recovery rejects, and would let
// the subsequent generation sweep delete an acknowledged record's only
// durable copy. CompleteRotate resolves the gate: on success parked Syncs
// flush to the new tail; on failure the log is wedged (failed) — Write
// and Sync report the error, no commit acknowledges on a broken stream,
// and the on-disk old generation stays intact for recovery after restart.
//
// Lock discipline: Write only appends to an in-memory buffer and is safe
// under the cluster mutex (group commit: many committers buffer under the
// lock, the first Sync outside it flushes and fsyncs for all). Sync,
// BeginRotate/CompleteRotate and Close do the file I/O and must never run
// while the cluster mutex is held — tiermergelint's blocking analysis now
// counts package os file I/O as blocking and enforces exactly that.
package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"tiermerge/internal/obs"
)

// Disk is the durable engine: the in-memory version chains of Memory plus
// the segmented log the base journal persists through.
type Disk struct {
	table
	dir string

	// bmu guards the pending buffers and the rotation-gate state —
	// memory-only, safe under the cluster mutex and safe to take nested
	// under fmu (it never waits on anything).
	//
	//tiermerge:leafmutex
	bmu sync.Mutex
	// old holds bytes buffered before a BeginRotate that CompleteRotate
	// still has to flush to the outgoing tail; buf holds bytes destined for
	// the current (or, mid-rotation, the next) tail.
	old, buf []byte
	// rotDone is non-nil while a rotation boundary is pending (between
	// BeginRotate and CompleteRotate) and is closed when the rotation
	// resolves. While pending, Sync must not flush buf: those bytes are
	// numbered for the next tail stream and may only be written once
	// CompleteRotate has installed it.
	rotDone chan struct{}
	// failed is the sticky wedge: set when a rotation fails, after which
	// Write and Sync report it and nothing is acknowledged — continuing to
	// append a restarted-sequence stream to the old tail would make the
	// log unrecoverable. The on-disk old generation stays intact; a
	// restart recovers it.
	failed error

	// fmu orders all file operations: flushes, fsyncs and rotation. A Sync
	// racing a rotation blocks here until the new tail is in place, so an
	// acknowledged commit is durable in exactly one generation. Blocking
	// file I/O under it is its charter — never take it under the cluster
	// mutex.
	//
	//tiermerge:iomutex
	fmu      sync.Mutex
	gen      int
	tail     tailFile
	unsynced bool

	mLogWritten, mLogTruncated *obs.Counter
}

// tailFile is the live tail's file surface — *os.File in production;
// the package's tests substitute fault-injecting implementations to
// exercise partial writes and sync failures.
type tailFile interface {
	io.Writer
	Sync() error
	Close() error
	Truncate(size int64) error
}

// RotateStats reports one checkpoint rotation.
type RotateStats struct {
	// CheckpointBytes is the size of the new checkpoint file.
	CheckpointBytes int64
	// TruncatedBytes is the size of the deleted previous generation
	// (checkpoint + tail) — the log growth a rotation reclaimed.
	TruncatedBytes int64
}

// OpenDisk opens (or creates) a durable engine rooted at dir. A fresh
// directory starts at generation zero with no segments: callers write the
// initial checkpoint through Rotate before appending. On an existing
// directory the newest readable generation survives and stale generations
// and temp files are swept.
func OpenDisk(dir string, opts ...Option) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	d := &Disk{dir: dir}
	d.table.init(opts)
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	var gens []int
	for _, e := range names {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(filepath.Join(dir, name)) // torn rotation leftovers
		case strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".wal"):
			if g, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".wal")); err == nil {
				gens = append(gens, g)
			}
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(gens)))
	for i, g := range gens {
		if i == 0 {
			d.gen = g
			continue
		}
		// Stale generation (crash between rotation and cleanup): sweep it.
		os.Remove(d.ckptPath(g))
		os.Remove(d.tailPath(g))
	}
	if d.gen > 0 {
		f, err := os.OpenFile(d.tailPath(d.gen), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("store: open tail: %w", err)
		}
		d.tail = f
	}
	return d, nil
}

// Registry attaches reg for the tiermerge_store_* series, including the
// disk engine's log-byte counters.
func (d *Disk) Registry(reg *obs.Registry) {
	if reg == nil {
		return
	}
	WithRegistry(reg)(&d.table)
	d.mLogWritten = reg.Counter("tiermerge_store_log_bytes_written_total")
	d.mLogTruncated = reg.Counter("tiermerge_store_log_bytes_truncated_total")
}

// Dir returns the engine's root directory.
func (d *Disk) Dir() string { return d.dir }

// Generation returns the current segment generation (zero on a fresh
// directory, before the first Rotate).
func (d *Disk) Generation() int {
	d.fmu.Lock()
	defer d.fmu.Unlock()
	return d.gen
}

// Fresh reports whether the directory holds no segments yet.
func (d *Disk) Fresh() bool { return d.Generation() == 0 }

func (d *Disk) ckptPath(gen int) string { return segmentPath(d.dir, "ckpt", gen) }

func (d *Disk) tailPath(gen int) string { return segmentPath(d.dir, "tail", gen) }

func segmentPath(dir, kind string, gen int) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%08d.wal", kind, gen))
}

// CheckpointTempPath returns the temp path a rotation stages generation
// gen's checkpoint at before the atomic rename publishes it. Exposed so
// crash simulations can materialize a mid-rotation image; OpenDisk sweeps
// any such leftover.
func CheckpointTempPath(dir string, gen int) string {
	return segmentPath(dir, "ckpt", gen) + ".tmp"
}

// ReadSegments returns the current generation's checkpoint and tail
// contents for recovery. A missing tail (crash between checkpoint rename
// and tail creation) reads as empty.
func (d *Disk) ReadSegments() (ckpt, tail []byte, err error) {
	d.fmu.Lock()
	defer d.fmu.Unlock()
	if d.gen == 0 {
		return nil, nil, fmt.Errorf("store: %s holds no segments", d.dir)
	}
	ckpt, err = os.ReadFile(d.ckptPath(d.gen))
	if err != nil {
		return nil, nil, fmt.Errorf("store: read checkpoint: %w", err)
	}
	tail, err = os.ReadFile(d.tailPath(d.gen))
	if err != nil {
		if os.IsNotExist(err) {
			return ckpt, nil, nil
		}
		return nil, nil, fmt.Errorf("store: read tail: %w", err)
	}
	return ckpt, tail, nil
}

// TruncateTail cuts the live tail to n bytes — recovery drops a torn final
// line before appends resume.
func (d *Disk) TruncateTail(n int64) error {
	d.fmu.Lock()
	defer d.fmu.Unlock()
	if d.tail == nil {
		return fmt.Errorf("store: no live tail")
	}
	if err := d.tail.Truncate(n); err != nil {
		return fmt.Errorf("store: truncate tail: %w", err)
	}
	return d.tail.Sync()
}

// Write buffers p for the live tail. It never touches the file — commit
// paths call it while holding the cluster mutex; the bytes reach stable
// media at the next Sync. On a wedged log (a rotation failed) it reports
// the sticky failure so commit paths stop before buffering records that
// can never be forced.
//
//tiermerge:nonblocking
func (d *Disk) Write(p []byte) (int, error) {
	d.bmu.Lock()
	if err := d.failed; err != nil {
		d.bmu.Unlock()
		return 0, err
	}
	d.buf = append(d.buf, p...)
	d.bmu.Unlock()
	return len(p), nil
}

// Failed reports the sticky wedge state: non-nil once a rotation has
// failed, after which no append or sync can succeed and the cluster must
// stop acknowledging (restart and recover the intact old generation).
func (d *Disk) Failed() error {
	d.bmu.Lock()
	defer d.bmu.Unlock()
	return d.failed
}

// Sync flushes buffered tail bytes to the live tail file and forces them
// to stable media. Concurrent committers group-commit: whoever enters
// first flushes everyone's buffered records (the buffer preserves commit
// order); later entrants find nothing pending and return after a cheap
// check. A Sync racing a rotation parks until CompleteRotate resolves the
// gate: bytes buffered after the boundary belong to the next tail stream
// and must never reach the outgoing one. Must not be called under the
// cluster mutex.
//
//tiermerge:blocking
func (d *Disk) Sync() error {
	for {
		if err := d.awaitRotation(); err != nil {
			return err
		}
		d.fmu.Lock()
		retry, err := d.syncLocked()
		d.fmu.Unlock()
		if !retry {
			return err
		}
	}
}

// awaitRotation parks until no rotation boundary is pending, then reports
// the wedge state. It holds no mutex while waiting — CompleteRotate needs
// fmu to resolve the gate, and the gate channel itself is read under bmu
// and waited on bare.
//
//tiermerge:blocking
func (d *Disk) awaitRotation() error {
	for {
		d.bmu.Lock()
		ch, err := d.rotDone, d.failed
		d.bmu.Unlock()
		if err != nil {
			return err
		}
		if ch == nil {
			return nil
		}
		<-ch
	}
}

// syncLocked flushes and fsyncs under fmu. retry reports that a rotation
// boundary landed between the caller's awaitRotation and fmu acquisition:
// the buffered bytes now belong to the next tail, so the caller must park
// again and re-enter once the rotation resolves.
func (d *Disk) syncLocked() (retry bool, err error) {
	d.bmu.Lock()
	if d.rotDone != nil {
		d.bmu.Unlock()
		return true, nil
	}
	if err := d.failed; err != nil {
		d.bmu.Unlock()
		return false, err
	}
	pending := d.buf
	d.buf = nil
	d.bmu.Unlock()
	if len(pending) == 0 && !d.unsynced {
		return false, nil
	}
	if d.tail == nil {
		return false, fmt.Errorf("store: no live tail (rotate first)")
	}
	if len(pending) > 0 {
		n, werr := d.tail.Write(pending)
		if n > 0 {
			d.unsynced = true
			if d.mLogWritten != nil {
				d.mLogWritten.Add(int64(n))
			}
		}
		if werr != nil {
			// Re-queue only the suffix the (possibly partial) write did
			// not persist: the first n bytes are already in the file, and
			// rewriting them on retry would duplicate interior records —
			// a sequence error Strict recovery rejects.
			d.bmu.Lock()
			d.buf = append(pending[n:], d.buf...)
			d.bmu.Unlock()
			return false, fmt.Errorf("store: tail write: %w", werr)
		}
	}
	if err := d.tail.Sync(); err != nil {
		return false, fmt.Errorf("store: tail sync: %w", err)
	}
	d.unsynced = false
	return false, nil
}

// BeginRotate marks the checkpoint boundary: bytes buffered so far belong
// to the outgoing tail, bytes buffered after it to the next one. It also
// opens the rotation gate — Syncs arriving before CompleteRotate resolves
// it park instead of flushing post-boundary bytes into the outgoing tail.
// Memory only — callers invoke it inside the same critical section that
// snapshots the state the checkpoint will record, then call CompleteRotate
// outside the lock. Every BeginRotate must be paired with a CompleteRotate
// (parked Syncs wait for it).
//
//tiermerge:nonblocking
func (d *Disk) BeginRotate() {
	d.bmu.Lock()
	d.old = append(d.old, d.buf...)
	d.buf = nil
	if d.rotDone == nil {
		d.rotDone = make(chan struct{})
	}
	d.bmu.Unlock()
}

// resolveRotation closes the rotation gate, releasing parked Syncs. A
// non-nil err wedges the log first, so the released Syncs (and every
// later Write) report the failure instead of appending a broken stream
// to the old tail.
func (d *Disk) resolveRotation(err error) {
	d.bmu.Lock()
	if err != nil && d.failed == nil {
		d.failed = fmt.Errorf("store: log wedged by failed rotation: %w", err)
	}
	if d.rotDone != nil {
		close(d.rotDone)
		d.rotDone = nil
	}
	d.bmu.Unlock()
}

// CompleteRotate performs the file work of a checkpoint rotation: flush
// the outgoing tail, write the new checkpoint through writeCkpt (temp file,
// fsync, atomic rename), open a fresh tail, and delete the previous
// generation. On success it resolves the rotation gate and parked Syncs
// flush into the new tail. On failure the on-disk old generation is left
// intact (a publish that got as far as the rename is rolled back) and the
// log is wedged: the journal's record numbering was already split at the
// boundary, so appending to the old tail again would corrupt it — Write
// and Sync report the failure, no commit acknowledges, and a restart
// recovers the old generation. Must not be called under the cluster mutex.
//
//tiermerge:blocking
func (d *Disk) CompleteRotate(writeCkpt func(w io.Writer) error) (RotateStats, error) {
	d.fmu.Lock()
	st, err := d.completeRotateLocked(writeCkpt)
	d.fmu.Unlock()
	d.resolveRotation(err)
	return st, err
}

func (d *Disk) completeRotateLocked(writeCkpt func(w io.Writer) error) (RotateStats, error) {
	var st RotateStats

	// Complete the outgoing generation: everything acknowledged before the
	// boundary must be durable in it before it becomes the fallback.
	d.bmu.Lock()
	old := d.old
	d.old = nil
	d.bmu.Unlock()
	if len(old) > 0 {
		if d.tail == nil {
			d.restoreOld(old)
			return st, fmt.Errorf("store: rotate: boundary bytes with no live tail")
		}
		n, err := d.tail.Write(old)
		if n > 0 {
			d.unsynced = true
			if d.mLogWritten != nil {
				d.mLogWritten.Add(int64(n))
			}
		}
		if err != nil {
			// Re-queue only what the (possibly partial) write left
			// unpersisted; the first n bytes are already in the file.
			d.restoreOld(old[n:])
			return st, fmt.Errorf("store: rotate: flush outgoing tail: %w", err)
		}
	}
	if d.tail != nil {
		if err := d.tail.Sync(); err != nil {
			return st, fmt.Errorf("store: rotate: sync outgoing tail: %w", err)
		}
		d.unsynced = false
	}

	next := d.gen + 1
	tmp := CheckpointTempPath(d.dir, next)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return st, fmt.Errorf("store: rotate: %w", err)
	}
	if err := writeCkpt(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return st, fmt.Errorf("store: rotate: write checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return st, fmt.Errorf("store: rotate: sync checkpoint: %w", err)
	}
	if info, err := f.Stat(); err == nil {
		st.CheckpointBytes = info.Size()
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return st, fmt.Errorf("store: rotate: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp, d.ckptPath(next)); err != nil {
		os.Remove(tmp)
		return st, fmt.Errorf("store: rotate: publish checkpoint: %w", err)
	}
	syncDir(d.dir)

	newTail, err := os.OpenFile(d.tailPath(next), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		// Roll the publish back: remove the just-renamed checkpoint so the
		// directory keeps describing the old generation, whose tail is
		// still the one d.gen/d.tail point at. (The new checkpoint was
		// durable and self-contained, but advancing d.gen without a live
		// tail would leave in-memory and on-disk state describing
		// different generations.) The failure wedges the log either way;
		// recovery after restart replays the intact old generation.
		os.Remove(d.ckptPath(next))
		syncDir(d.dir)
		return st, fmt.Errorf("store: rotate: open new tail: %w", err)
	}

	// Truncation: reclaim the previous generation.
	st.TruncatedBytes += fileSize(d.ckptPath(d.gen)) + fileSize(d.tailPath(d.gen))
	if d.tail != nil {
		d.tail.Close()
	}
	os.Remove(d.ckptPath(d.gen))
	os.Remove(d.tailPath(d.gen))
	syncDir(d.dir)
	d.gen = next
	d.tail = newTail
	if d.mLogTruncated != nil {
		d.mLogTruncated.Add(st.TruncatedBytes)
	}
	if d.mLogWritten != nil {
		d.mLogWritten.Add(st.CheckpointBytes)
	}
	return st, nil
}

// restoreOld re-queues unpersisted boundary bytes after a failed rotation
// step, keeping the buffer state an honest picture of what never reached
// the file. (The failure wedges the log, so they are never flushed — but
// Close and post-mortem inspection see exactly what was lost, and none of
// it was acknowledged.)
func (d *Disk) restoreOld(old []byte) {
	if len(old) == 0 {
		return
	}
	d.bmu.Lock()
	d.old = append(old, d.old...)
	d.bmu.Unlock()
}

// LogSize returns the on-disk size of the current generation (checkpoint
// plus tail), not counting unflushed buffered bytes.
func (d *Disk) LogSize() int64 {
	d.fmu.Lock()
	defer d.fmu.Unlock()
	if d.gen == 0 {
		return 0
	}
	return fileSize(d.ckptPath(d.gen)) + fileSize(d.tailPath(d.gen))
}

// Close flushes and closes the live tail. It waits out a pending rotation
// like Sync does; on a wedged log it still releases the file descriptor
// and returns the wedge error.
//
//tiermerge:blocking
func (d *Disk) Close() error {
	err := d.Sync()
	d.fmu.Lock()
	defer d.fmu.Unlock()
	if d.tail != nil {
		if cerr := d.tail.Close(); err == nil {
			err = cerr
		}
		d.tail = nil
	}
	return err
}

func fileSize(path string) int64 {
	info, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return info.Size()
}

// syncDir fsyncs a directory so a rename or unlink survives power loss;
// best-effort (some filesystems reject directory fsync).
func syncDir(dir string) {
	f, err := os.Open(dir)
	if err != nil {
		return
	}
	f.Sync()
	f.Close()
}
