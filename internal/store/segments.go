package store

// Package-level segment I/O: read or materialize a directory's segment
// pair without opening an engine. Crash simulations use these to capture
// an on-disk image mid-run and to reconstruct the images a crash at each
// kill point would leave behind (DESIGN.md §14).

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// newestGeneration scans dir for checkpoint segments and returns the
// highest generation present (zero when dir holds none).
func newestGeneration(dir string) (int, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("store: read %s: %w", dir, err)
	}
	gen := 0
	for _, e := range names {
		name := e.Name()
		if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		if g, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".wal")); err == nil && g > gen {
			gen = g
		}
	}
	return gen, nil
}

// Segments reads the newest segment generation rooted at dir: the
// generation number plus the checkpoint and tail contents. A missing tail
// file (crash between checkpoint publication and tail creation) reads as
// nil. The files are read as they are — a live engine's synced bytes are
// visible, its buffered ones are not.
func Segments(dir string) (gen int, ckpt, tail []byte, err error) {
	gen, err = newestGeneration(dir)
	if err != nil {
		return 0, nil, nil, err
	}
	if gen == 0 {
		return 0, nil, nil, fmt.Errorf("store: %s holds no segments", dir)
	}
	ckpt, err = os.ReadFile(segmentPath(dir, "ckpt", gen))
	if err != nil {
		return 0, nil, nil, fmt.Errorf("store: read checkpoint: %w", err)
	}
	tail, err = os.ReadFile(segmentPath(dir, "tail", gen))
	if err != nil {
		if os.IsNotExist(err) {
			return gen, ckpt, nil, nil
		}
		return 0, nil, nil, fmt.Errorf("store: read tail: %w", err)
	}
	return gen, ckpt, tail, nil
}

// WriteSegments materializes a segment pair for generation gen at dir —
// the crash-image constructor simulations build kill points from. A nil
// tail writes no tail file (the image of a crash between checkpoint
// rename and tail creation); a non-nil empty tail writes an empty file.
func WriteSegments(dir string, gen int, ckpt, tail []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: write segments: %w", err)
	}
	if err := os.WriteFile(segmentPath(dir, "ckpt", gen), ckpt, 0o644); err != nil {
		return fmt.Errorf("store: write segments: %w", err)
	}
	if tail == nil {
		return nil
	}
	if err := os.WriteFile(segmentPath(dir, "tail", gen), tail, 0o644); err != nil {
		return fmt.Errorf("store: write segments: %w", err)
	}
	return nil
}
