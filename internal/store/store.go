// Package store is the base tier's storage engine seam. The paper's
// correctness argument leans on base transactions being durable
// (Section 2.1); ROADMAP item 3 calls out the in-memory map + append-only
// journal as the blocker for base state larger than RAM and for logs that
// stop growing. This package supplies the pluggable engine behind
// replica.BaseCluster:
//
//   - versioned values: every item carries a chain of versions stamped with
//     the (windowID, pos) base-history coordinate that wrote them, ordered
//     lexicographically. A read resolves against a watermark — the newest
//     version at or below (window, pos) — so the base state at any history
//     position of any window is reconstructible without per-position state
//     clones (the SplinterDB transaction_data_config shape: versions merged
//     at the storage layer).
//   - snapshots: SnapshotAt pins a watermark and registers it with the
//     engine; checkpoint compaction never drops a version a live snapshot
//     can still resolve (retain-until-released). Release the snapshot to
//     let compaction advance.
//   - checkpointing: Checkpoint(window, pos) compacts every chain to the
//     newest version at or below the floor, discarding history no snapshot
//     can reach.
//
// Two engines implement the seam: Memory (chains only — the previous
// in-memory behavior with bounded per-window state) and Disk (chains plus a
// segmented durable log: an atomically rotated checkpoint file and a live
// tail the base journal appends to, see disk.go).
package store

import (
	"sort"
	"sync"

	"tiermerge/internal/model"
	"tiermerge/internal/obs"
)

// Engine is the storage seam replica.BaseCluster writes through. All chain
// operations (Get, Set, InsertAt, SnapshotAt, Checkpoint, Stats) are
// memory-only and safe to call while the cluster mutex is held; only
// Close — and the Disk engine's file operations — touch stable media.
type Engine interface {
	// Get returns the newest committed value of it.
	Get(it model.Item) (model.Value, bool)
	// Set records writes as versions stamped (window, pos). Writing the
	// same coordinate twice overwrites (recovery replays are idempotent).
	Set(window, pos int, writes map[model.Item]model.Value)
	// InsertAt makes room at (window, pos): every version of window at a
	// position >= pos moves up one, then writes lands at (window, pos) —
	// the Strategy 1 interior insert. Reads between the insert position and
	// the tail see the inserted values exactly when no later version
	// overwrites them, which the merge protocol's insert-conflict check
	// guarantees.
	InsertAt(window, pos int, writes map[model.Item]model.Value)
	// SnapshotAt pins the base state at watermark (window, pos). The
	// snapshot stays readable — and blocks compaction past its watermark —
	// until released.
	SnapshotAt(window, pos int) *Snapshot
	// Checkpoint compacts every chain to the newest version at or below
	// floor (window, pos), clamped by the oldest live snapshot.
	Checkpoint(window, pos int) CheckpointStats
	// Stats reports chain and snapshot occupancy.
	Stats() Stats
	// Close releases the engine's resources, flushing buffered log bytes
	// to stable media on durable engines.
	Close() error
}

// version is one value of an item's chain, stamped with the base-history
// coordinate that wrote it.
type version struct {
	window, pos int
	value       model.Value
}

// before reports strict (window, pos) lexicographic order.
func (v version) before(window, pos int) bool {
	return v.window < window || (v.window == window && v.pos < pos)
}

// atOrBefore reports v <= (window, pos).
func (v version) atOrBefore(window, pos int) bool {
	return v.window < window || (v.window == window && v.pos <= pos)
}

// Stats is an engine occupancy report.
type Stats struct {
	// Items is the number of distinct items with at least one version.
	Items int
	// Versions is the total version count across all chains — the figure
	// the satellite soak test bounds across windows.
	Versions int
	// Snapshots is the number of live (unreleased) snapshots.
	Snapshots int
}

// CheckpointStats reports one chain compaction.
type CheckpointStats struct {
	// Compacted is the number of versions dropped.
	Compacted int
	// FloorWindow/FloorPos is the effective floor after clamping to the
	// oldest live snapshot.
	FloorWindow, FloorPos int
}

// Option configures an engine.
type Option func(*table)

// WithRegistry attaches an obs metrics registry; the engine maintains the
// tiermerge_store_* series on it.
func WithRegistry(reg *obs.Registry) Option {
	return func(t *table) {
		if reg == nil {
			return
		}
		t.mVersions = reg.Gauge("tiermerge_store_versions")
		t.mSnapshots = reg.Gauge("tiermerge_store_snapshots_open")
		t.mCheckpoints = reg.Counter("tiermerge_store_checkpoints_total")
		t.mCompacted = reg.Counter("tiermerge_store_versions_compacted_total")
	}
}

// table is the version-chain core shared by the Memory and Disk engines.
// Its mutex orders chain mutations against snapshot reads; it is only ever
// acquired after the cluster mutex (never the reverse), and no operation
// under it blocks.
type table struct {
	mu       sync.RWMutex
	chains   map[model.Item][]version
	snaps    map[*Snapshot]struct{}
	versions int

	mVersions, mSnapshots    *obs.Gauge
	mCheckpoints, mCompacted *obs.Counter
}

func (t *table) init(opts []Option) {
	t.chains = make(map[model.Item][]version)
	t.snaps = make(map[*Snapshot]struct{})
	for _, o := range opts {
		o(t)
	}
}

// Get returns the newest committed value of it.
//
//tiermerge:nonblocking
func (t *table) Get(it model.Item) (model.Value, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ch := t.chains[it]
	if len(ch) == 0 {
		return 0, false
	}
	return ch[len(ch)-1].value, true
}

// Set records writes as versions stamped (window, pos).
//
//tiermerge:nonblocking
func (t *table) Set(window, pos int, writes map[model.Item]model.Value) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for it, v := range writes {
		t.setOne(it, window, pos, v)
	}
	t.gaugeVersionsLocked()
}

func (t *table) setOne(it model.Item, window, pos int, v model.Value) {
	ch := t.chains[it]
	// Find the insertion point; the common case appends at the tail.
	i := sort.Search(len(ch), func(i int) bool { return !ch[i].before(window, pos) })
	if i < len(ch) && ch[i].window == window && ch[i].pos == pos {
		ch[i].value = v // idempotent re-write of the same coordinate
		return
	}
	ch = append(ch, version{})
	copy(ch[i+1:], ch[i:])
	ch[i] = version{window: window, pos: pos, value: v}
	t.chains[it] = ch
	t.versions++
}

// InsertAt shifts every version of window at position >= pos up one, then
// records writes at (window, pos).
//
//tiermerge:nonblocking
func (t *table) InsertAt(window, pos int, writes map[model.Item]model.Value) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for it, ch := range t.chains {
		changed := false
		for i := range ch {
			if ch[i].window == window && ch[i].pos >= pos {
				ch[i].pos++
				changed = true
			}
		}
		if changed {
			t.chains[it] = ch
		}
	}
	for it, v := range writes {
		t.setOne(it, window, pos, v)
	}
	t.gaugeVersionsLocked()
}

// SnapshotAt pins the base state at watermark (window, pos).
//
//tiermerge:nonblocking
func (t *table) SnapshotAt(window, pos int) *Snapshot {
	s := &Snapshot{t: t, window: window, pos: pos}
	t.mu.Lock()
	t.snaps[s] = struct{}{}
	if t.mSnapshots != nil {
		t.mSnapshots.Set(int64(len(t.snaps)))
	}
	t.mu.Unlock()
	return s
}

// Checkpoint compacts every chain to the newest version at or below the
// floor, clamped to the oldest live snapshot's watermark.
//
//tiermerge:nonblocking
func (t *table) Checkpoint(window, pos int) CheckpointStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	for s := range t.snaps {
		if (version{window: s.window, pos: s.pos}).before(window, pos) {
			window, pos = s.window, s.pos
		}
	}
	st := CheckpointStats{FloorWindow: window, FloorPos: pos}
	for it, ch := range t.chains {
		// keep = index of the newest version <= floor: everything before it
		// is unreachable from any allowed watermark.
		keep := sort.Search(len(ch), func(i int) bool { return !ch[i].atOrBefore(window, pos) }) - 1
		if keep <= 0 {
			continue
		}
		st.Compacted += keep
		t.chains[it] = append(ch[:0:0], ch[keep:]...)
	}
	t.versions -= st.Compacted
	if t.mCheckpoints != nil {
		t.mCheckpoints.Inc()
		t.mCompacted.Add(int64(st.Compacted))
	}
	t.gaugeVersionsLocked()
	return st
}

// Stats reports chain and snapshot occupancy.
//
//tiermerge:nonblocking
func (t *table) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return Stats{Items: len(t.chains), Versions: t.versions, Snapshots: len(t.snaps)}
}

func (t *table) gaugeVersionsLocked() {
	if t.mVersions != nil {
		t.mVersions.Set(int64(t.versions))
	}
}

// release unregisters a snapshot.
func (t *table) release(s *Snapshot) {
	t.mu.Lock()
	delete(t.snaps, s)
	if t.mSnapshots != nil {
		t.mSnapshots.Set(int64(len(t.snaps)))
	}
	t.mu.Unlock()
}

// Snapshot is a pinned read view of the base state at one (window, pos)
// watermark. Reads are safe concurrently with chain mutations; the
// watermark's versions survive compaction until Release.
type Snapshot struct {
	t           *table
	window, pos int
	once        sync.Once
}

// Window returns the snapshot's watermark window.
func (s *Snapshot) Window() int { return s.window }

// Pos returns the snapshot's watermark position.
func (s *Snapshot) Pos() int { return s.pos }

// Get resolves it at the snapshot watermark.
//
//tiermerge:nonblocking
func (s *Snapshot) Get(it model.Item) (model.Value, bool) {
	s.t.mu.RLock()
	defer s.t.mu.RUnlock()
	return resolve(s.t.chains[it], s.window, s.pos)
}

// State materializes the full base state at the snapshot watermark.
func (s *Snapshot) State() model.State { return s.StateAt(s.pos) }

// StateAt materializes the full base state at (snapshot window, pos) for
// pos at or below the watermark — the per-position states the merge
// protocol's base sub-history view is built from.
//
//tiermerge:nonblocking
func (s *Snapshot) StateAt(pos int) model.State {
	s.t.mu.RLock()
	defer s.t.mu.RUnlock()
	st := make(model.State, len(s.t.chains))
	for it, ch := range s.t.chains {
		if v, ok := resolve(ch, s.window, pos); ok {
			st[it] = v
		}
	}
	return st
}

// Release unpins the snapshot, letting checkpoint compaction advance past
// its watermark. Safe to call more than once.
func (s *Snapshot) Release() {
	s.once.Do(func() { s.t.release(s) })
}

// resolve returns the newest version of ch at or below (window, pos).
func resolve(ch []version, window, pos int) (model.Value, bool) {
	i := sort.Search(len(ch), func(i int) bool { return !ch[i].atOrBefore(window, pos) })
	if i == 0 {
		return 0, false
	}
	return ch[i-1].value, true
}

// Memory is the chains-only engine: the base tier's previous in-memory
// durability model (none), now with versioned per-window state instead of
// per-position full clones.
type Memory struct {
	table
}

// NewMemory builds an in-memory engine.
func NewMemory(opts ...Option) *Memory {
	m := &Memory{}
	m.table.init(opts)
	return m
}

// Close is a no-op: the memory engine holds no durable resources.
func (m *Memory) Close() error { return nil }
