package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tiermerge/internal/model"
	"tiermerge/internal/obs"
)

func TestMemoryVersionResolution(t *testing.T) {
	m := NewMemory()
	m.Set(1, 0, map[model.Item]model.Value{"x": 10, "y": 20})
	m.Set(1, 1, map[model.Item]model.Value{"x": 11})
	m.Set(1, 3, map[model.Item]model.Value{"y": 23})
	m.Set(2, 1, map[model.Item]model.Value{"x": 30})

	if v, ok := m.Get("x"); !ok || v != 30 {
		t.Fatalf("Get(x) = %d, %v; want 30", v, ok)
	}

	s := m.SnapshotAt(1, 2)
	defer s.Release()
	if v, _ := s.Get("x"); v != 11 {
		t.Errorf("snapshot(1,2) x = %d, want 11", v)
	}
	if v, _ := s.Get("y"); v != 20 {
		t.Errorf("snapshot(1,2) y = %d, want 20 (write at pos 3 is past the watermark)", v)
	}
	st := s.State()
	want := model.State{"x": 11, "y": 20}
	if !st.Equal(want) {
		t.Errorf("State() = %v, want %v", st, want)
	}
	if st0 := s.StateAt(0); !st0.Equal(model.State{"x": 10, "y": 20}) {
		t.Errorf("StateAt(0) = %v", st0)
	}
}

func TestSetIdempotent(t *testing.T) {
	m := NewMemory()
	m.Set(1, 1, map[model.Item]model.Value{"x": 1})
	m.Set(1, 1, map[model.Item]model.Value{"x": 2}) // recovery replays overwrite
	if st := m.Stats(); st.Versions != 1 {
		t.Fatalf("Versions = %d, want 1", st.Versions)
	}
	if v, _ := m.Get("x"); v != 2 {
		t.Fatalf("Get(x) = %d, want 2", v)
	}
}

func TestInsertAtShiftsWindowPositions(t *testing.T) {
	m := NewMemory()
	m.Set(1, 0, map[model.Item]model.Value{"x": 0, "z": 0})
	m.Set(1, 1, map[model.Item]model.Value{"x": 1})
	m.Set(1, 2, map[model.Item]model.Value{"x": 2})
	// Interior insert at pos 1: a forwarded write on z (disjoint from the
	// later writes on x, as the insert-conflict check guarantees).
	m.InsertAt(1, 1, map[model.Item]model.Value{"z": 99})

	s := m.SnapshotAt(1, 3)
	defer s.Release()
	if st := s.StateAt(1); !st.Equal(model.State{"x": 0, "z": 99}) {
		t.Errorf("StateAt(1) = %v, want inserted z visible, x at origin", st)
	}
	if st := s.StateAt(2); !st.Equal(model.State{"x": 1, "z": 99}) {
		t.Errorf("StateAt(2) = %v, want shifted x=1", st)
	}
	if st := s.StateAt(3); !st.Equal(model.State{"x": 2, "z": 99}) {
		t.Errorf("StateAt(3) = %v", st)
	}
}

func TestCheckpointCompactsAndRetainsSnapshots(t *testing.T) {
	m := NewMemory()
	for w := 1; w <= 5; w++ {
		for p := 1; p <= 4; p++ {
			m.Set(w, p, map[model.Item]model.Value{"x": model.Value(w*10 + p)})
		}
	}
	if st := m.Stats(); st.Versions != 20 {
		t.Fatalf("Versions = %d, want 20", st.Versions)
	}

	// A live snapshot at (2, 4) clamps the floor.
	s := m.SnapshotAt(2, 4)
	cs := m.Checkpoint(5, 0)
	if cs.FloorWindow != 2 || cs.FloorPos != 4 {
		t.Fatalf("floor = (%d,%d), want clamp to live snapshot (2,4)", cs.FloorWindow, cs.FloorPos)
	}
	if v, _ := s.Get("x"); v != 24 {
		t.Fatalf("snapshot read after compaction = %d, want 24", v)
	}

	// Released: compaction advances to the requested floor.
	s.Release()
	m.Checkpoint(5, 0)
	st := m.Stats()
	// One version at or below (5,0) survives as the base, plus the window-5
	// versions above the floor.
	if st.Versions != 5 {
		t.Fatalf("Versions after full compaction = %d, want 5", st.Versions)
	}
	if v, _ := m.Get("x"); v != 54 {
		t.Fatalf("Get(x) after compaction = %d, want 54", v)
	}
	s2 := m.SnapshotAt(5, 4)
	defer s2.Release()
	if v, _ := s2.Get("x"); v != 54 {
		t.Fatalf("snapshot after compaction = %d, want 54", v)
	}
}

func TestStoreMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMemory(WithRegistry(reg))
	m.Set(1, 1, map[model.Item]model.Value{"x": 1, "y": 2})
	s := m.SnapshotAt(1, 1)
	m.Checkpoint(1, 0)
	snap := reg.Snapshot()
	if got := snap.Gauges["tiermerge_store_versions"]; got != 2 {
		t.Errorf("tiermerge_store_versions = %d, want 2", got)
	}
	if got := snap.Gauges["tiermerge_store_snapshots_open"]; got != 1 {
		t.Errorf("tiermerge_store_snapshots_open = %d, want 1", got)
	}
	if got := snap.Counters["tiermerge_store_checkpoints_total"]; got != 1 {
		t.Errorf("tiermerge_store_checkpoints_total = %d, want 1", got)
	}
	s.Release()
}

func TestDiskRotateAndRecoverSegments(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Fresh() {
		t.Fatal("fresh dir should report Fresh")
	}
	if _, err := d.CompleteRotate(func(w io.Writer) error {
		_, err := w.Write([]byte("ckpt-1\n"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if d.Generation() != 1 {
		t.Fatalf("gen = %d, want 1", d.Generation())
	}
	fmt.Fprintf(d, "tail-line-1\n")
	fmt.Fprintf(d, "tail-line-2\n")
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}

	ckpt, tail, err := d.ReadSegments()
	if err != nil {
		t.Fatal(err)
	}
	if string(ckpt) != "ckpt-1\n" {
		t.Errorf("ckpt = %q", ckpt)
	}
	if string(tail) != "tail-line-1\ntail-line-2\n" {
		t.Errorf("tail = %q", tail)
	}

	// Rotate: boundary bytes buffered before BeginRotate land in the old
	// tail; bytes after it land in the new one.
	fmt.Fprintf(d, "old-epoch\n")
	d.BeginRotate()
	fmt.Fprintf(d, "new-epoch\n")
	st, err := d.CompleteRotate(func(w io.Writer) error {
		_, err := w.Write([]byte("ckpt-2\n"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.TruncatedBytes == 0 {
		t.Error("rotation reclaimed no bytes")
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	ckpt, tail, err = d.ReadSegments()
	if err != nil {
		t.Fatal(err)
	}
	if string(ckpt) != "ckpt-2\n" {
		t.Errorf("ckpt after rotate = %q", ckpt)
	}
	if string(tail) != "new-epoch\n" {
		t.Errorf("tail after rotate = %q (old-epoch bytes must be truncated away)", tail)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Old generation files must be gone.
	entries, _ := os.ReadDir(dir)
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("dir holds %v, want exactly ckpt-2 + tail-2", names)
	}

	// Reopen: generation and contents survive.
	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Generation() != 2 {
		t.Fatalf("reopened gen = %d, want 2", d2.Generation())
	}
	ckpt, tail, err = d2.ReadSegments()
	if err != nil {
		t.Fatal(err)
	}
	if string(ckpt) != "ckpt-2\n" || string(tail) != "new-epoch\n" {
		t.Errorf("reopened segments = %q / %q", ckpt, tail)
	}
}

func TestDiskSweepsStaleGenerations(t *testing.T) {
	dir := t.TempDir()
	// Simulate a crash between rotation and cleanup: both generations on
	// disk, plus a torn temp file.
	writeFile(t, filepath.Join(dir, "ckpt-00000001.wal"), "old-ckpt\n")
	writeFile(t, filepath.Join(dir, "tail-00000001.wal"), "old-tail\n")
	writeFile(t, filepath.Join(dir, "ckpt-00000002.wal"), "new-ckpt\n")
	writeFile(t, filepath.Join(dir, "ckpt-00000003.wal.tmp"), "torn")

	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Generation() != 2 {
		t.Fatalf("gen = %d, want newest complete generation 2", d.Generation())
	}
	ckpt, tail, err := d.ReadSegments()
	if err != nil {
		t.Fatal(err)
	}
	if string(ckpt) != "new-ckpt\n" {
		t.Errorf("ckpt = %q", ckpt)
	}
	if len(tail) != 0 {
		t.Errorf("missing tail should read empty, got %q", tail)
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt-00000001.wal")); !os.IsNotExist(err) {
		t.Error("stale generation 1 checkpoint not swept")
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt-00000003.wal.tmp")); !os.IsNotExist(err) {
		t.Error("temp file not swept")
	}
}

func TestDiskTruncateTail(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CompleteRotate(func(w io.Writer) error { return nil }); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(d, "good line\ntorn li")
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.TruncateTail(int64(len("good line\n"))); err != nil {
		t.Fatal(err)
	}
	_, tail, err := d.ReadSegments()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tail, []byte("good line\n")) {
		t.Fatalf("tail after truncate = %q", tail)
	}
	d.Close()
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// --- Rotation-gate regressions: a Sync racing a checkpoint rotation must
// never flush post-boundary bytes (a restarted-sequence stream destined
// for the next tail) into the outgoing tail, and a failed rotation must
// wedge the log instead of silently resuming a broken stream.

// TestSyncParksDuringRotation: a Sync entering between BeginRotate and
// CompleteRotate parks on the rotation gate and flushes into the NEW tail
// once it is live. Pre-fix, the Sync could win the file mutex ahead of
// CompleteRotate and fsync the post-boundary record into the outgoing
// tail, which the rotation then deleted — losing an acknowledged commit.
func TestSyncParksDuringRotation(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CompleteRotate(func(w io.Writer) error {
		_, err := w.Write([]byte("ckpt-1\n"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(d, "pre-boundary\n")
	d.BeginRotate()
	fmt.Fprintf(d, "post-boundary\n") // numbered for the next tail stream

	synced := make(chan error, 1)
	go func() { synced <- d.Sync() }()
	select {
	case err := <-synced:
		t.Fatalf("Sync completed mid-rotation (err=%v): post-boundary bytes may have reached the outgoing tail", err)
	case <-time.After(50 * time.Millisecond):
	}

	if _, err := d.CompleteRotate(func(w io.Writer) error {
		_, err := w.Write([]byte("ckpt-2\n"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-synced; err != nil {
		t.Fatalf("parked Sync after rotation: %v", err)
	}
	ckpt, tail, err := d.ReadSegments()
	if err != nil {
		t.Fatal(err)
	}
	if string(ckpt) != "ckpt-2\n" {
		t.Errorf("ckpt = %q, want ckpt-2", ckpt)
	}
	if string(tail) != "post-boundary\n" {
		t.Errorf("new tail = %q, want exactly the post-boundary record", tail)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFailedRotationWedgesLog: after CompleteRotate fails, the boundary
// has already restarted the journal's record numbering, so the log is
// sealed — Sync and Write report the failure (nothing acknowledges), the
// old generation is untouched on disk, and a restart recovers it.
// Pre-fix, the next Sync appended the restarted-seq records to the old
// tail, an interior sequence break Strict recovery rejects.
func TestFailedRotationWedgesLog(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CompleteRotate(func(w io.Writer) error {
		_, err := w.Write([]byte("ckpt-1\n"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(d, "acked-1\n")
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}

	d.BeginRotate()
	fmt.Fprintf(d, "post-boundary\n")
	injected := errors.New("checkpoint media gone")
	if _, err := d.CompleteRotate(func(io.Writer) error { return injected }); !errors.Is(err, injected) {
		t.Fatalf("CompleteRotate = %v, want the injected failure", err)
	}

	if err := d.Sync(); err == nil {
		t.Fatal("Sync on a wedged log must fail: its buffered records restart the sequence mid-stream")
	}
	if _, err := d.Write([]byte("more\n")); err == nil {
		t.Fatal("Write on a wedged log must fail")
	}
	if d.Failed() == nil {
		t.Fatal("Failed() must report the wedge")
	}
	ckpt, tail, err := d.ReadSegments()
	if err != nil {
		t.Fatal(err)
	}
	if string(ckpt) != "ckpt-1\n" || string(tail) != "acked-1\n" {
		t.Fatalf("old generation disturbed by failed rotation: ckpt=%q tail=%q", ckpt, tail)
	}
	if err := d.Close(); err == nil {
		t.Fatal("Close on a wedged log should surface the wedge")
	}

	// Restart: the intact old generation recovers cleanly.
	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Generation() != 1 {
		t.Fatalf("reopened gen = %d, want 1", d2.Generation())
	}
	ckpt, tail, err = d2.ReadSegments()
	if err != nil {
		t.Fatal(err)
	}
	if string(ckpt) != "ckpt-1\n" || string(tail) != "acked-1\n" {
		t.Fatalf("recovered segments = %q / %q", ckpt, tail)
	}
}

// shortWriteTail fails its first Write after persisting only half the
// bytes — the short-write-plus-error shape os.File can produce.
type shortWriteTail struct {
	tailFile
	failNext bool
}

func (p *shortWriteTail) Write(b []byte) (int, error) {
	if p.failNext {
		p.failNext = false
		n, err := p.tailFile.Write(b[:len(b)/2])
		if err != nil {
			return n, err
		}
		return n, errors.New("injected short write")
	}
	return p.tailFile.Write(b)
}

// TestPartialTailWriteRequeuesOnlySuffix: after a short write + error, a
// retried Sync must append only the unpersisted suffix. Pre-fix it
// re-queued the whole buffer, duplicating the already-persisted prefix
// mid-stream — a sequence error Strict recovery rejects.
func TestPartialTailWriteRequeuesOnlySuffix(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CompleteRotate(func(w io.Writer) error { return nil }); err != nil {
		t.Fatal(err)
	}
	d.tail = &shortWriteTail{tailFile: d.tail, failNext: true}
	fmt.Fprintf(d, "record-1\nrecord-2\n")
	if err := d.Sync(); err == nil {
		t.Fatal("first Sync should report the injected write failure")
	}
	if err := d.Sync(); err != nil {
		t.Fatalf("retried Sync: %v", err)
	}
	_, tail, err := d.ReadSegments()
	if err != nil {
		t.Fatal(err)
	}
	if string(tail) != "record-1\nrecord-2\n" {
		t.Fatalf("tail = %q: retried Sync must not duplicate the partially written prefix", tail)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}
