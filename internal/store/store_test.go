package store

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"tiermerge/internal/model"
	"tiermerge/internal/obs"
)

func TestMemoryVersionResolution(t *testing.T) {
	m := NewMemory()
	m.Set(1, 0, map[model.Item]model.Value{"x": 10, "y": 20})
	m.Set(1, 1, map[model.Item]model.Value{"x": 11})
	m.Set(1, 3, map[model.Item]model.Value{"y": 23})
	m.Set(2, 1, map[model.Item]model.Value{"x": 30})

	if v, ok := m.Get("x"); !ok || v != 30 {
		t.Fatalf("Get(x) = %d, %v; want 30", v, ok)
	}

	s := m.SnapshotAt(1, 2)
	defer s.Release()
	if v, _ := s.Get("x"); v != 11 {
		t.Errorf("snapshot(1,2) x = %d, want 11", v)
	}
	if v, _ := s.Get("y"); v != 20 {
		t.Errorf("snapshot(1,2) y = %d, want 20 (write at pos 3 is past the watermark)", v)
	}
	st := s.State()
	want := model.State{"x": 11, "y": 20}
	if !st.Equal(want) {
		t.Errorf("State() = %v, want %v", st, want)
	}
	if st0 := s.StateAt(0); !st0.Equal(model.State{"x": 10, "y": 20}) {
		t.Errorf("StateAt(0) = %v", st0)
	}
}

func TestSetIdempotent(t *testing.T) {
	m := NewMemory()
	m.Set(1, 1, map[model.Item]model.Value{"x": 1})
	m.Set(1, 1, map[model.Item]model.Value{"x": 2}) // recovery replays overwrite
	if st := m.Stats(); st.Versions != 1 {
		t.Fatalf("Versions = %d, want 1", st.Versions)
	}
	if v, _ := m.Get("x"); v != 2 {
		t.Fatalf("Get(x) = %d, want 2", v)
	}
}

func TestInsertAtShiftsWindowPositions(t *testing.T) {
	m := NewMemory()
	m.Set(1, 0, map[model.Item]model.Value{"x": 0, "z": 0})
	m.Set(1, 1, map[model.Item]model.Value{"x": 1})
	m.Set(1, 2, map[model.Item]model.Value{"x": 2})
	// Interior insert at pos 1: a forwarded write on z (disjoint from the
	// later writes on x, as the insert-conflict check guarantees).
	m.InsertAt(1, 1, map[model.Item]model.Value{"z": 99})

	s := m.SnapshotAt(1, 3)
	defer s.Release()
	if st := s.StateAt(1); !st.Equal(model.State{"x": 0, "z": 99}) {
		t.Errorf("StateAt(1) = %v, want inserted z visible, x at origin", st)
	}
	if st := s.StateAt(2); !st.Equal(model.State{"x": 1, "z": 99}) {
		t.Errorf("StateAt(2) = %v, want shifted x=1", st)
	}
	if st := s.StateAt(3); !st.Equal(model.State{"x": 2, "z": 99}) {
		t.Errorf("StateAt(3) = %v", st)
	}
}

func TestCheckpointCompactsAndRetainsSnapshots(t *testing.T) {
	m := NewMemory()
	for w := 1; w <= 5; w++ {
		for p := 1; p <= 4; p++ {
			m.Set(w, p, map[model.Item]model.Value{"x": model.Value(w*10 + p)})
		}
	}
	if st := m.Stats(); st.Versions != 20 {
		t.Fatalf("Versions = %d, want 20", st.Versions)
	}

	// A live snapshot at (2, 4) clamps the floor.
	s := m.SnapshotAt(2, 4)
	cs := m.Checkpoint(5, 0)
	if cs.FloorWindow != 2 || cs.FloorPos != 4 {
		t.Fatalf("floor = (%d,%d), want clamp to live snapshot (2,4)", cs.FloorWindow, cs.FloorPos)
	}
	if v, _ := s.Get("x"); v != 24 {
		t.Fatalf("snapshot read after compaction = %d, want 24", v)
	}

	// Released: compaction advances to the requested floor.
	s.Release()
	m.Checkpoint(5, 0)
	st := m.Stats()
	// One version at or below (5,0) survives as the base, plus the window-5
	// versions above the floor.
	if st.Versions != 5 {
		t.Fatalf("Versions after full compaction = %d, want 5", st.Versions)
	}
	if v, _ := m.Get("x"); v != 54 {
		t.Fatalf("Get(x) after compaction = %d, want 54", v)
	}
	s2 := m.SnapshotAt(5, 4)
	defer s2.Release()
	if v, _ := s2.Get("x"); v != 54 {
		t.Fatalf("snapshot after compaction = %d, want 54", v)
	}
}

func TestStoreMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMemory(WithRegistry(reg))
	m.Set(1, 1, map[model.Item]model.Value{"x": 1, "y": 2})
	s := m.SnapshotAt(1, 1)
	m.Checkpoint(1, 0)
	snap := reg.Snapshot()
	if got := snap.Gauges["tiermerge_store_versions"]; got != 2 {
		t.Errorf("tiermerge_store_versions = %d, want 2", got)
	}
	if got := snap.Gauges["tiermerge_store_snapshots_open"]; got != 1 {
		t.Errorf("tiermerge_store_snapshots_open = %d, want 1", got)
	}
	if got := snap.Counters["tiermerge_store_checkpoints_total"]; got != 1 {
		t.Errorf("tiermerge_store_checkpoints_total = %d, want 1", got)
	}
	s.Release()
}

func TestDiskRotateAndRecoverSegments(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Fresh() {
		t.Fatal("fresh dir should report Fresh")
	}
	if _, err := d.CompleteRotate(func(w io.Writer) error {
		_, err := w.Write([]byte("ckpt-1\n"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if d.Generation() != 1 {
		t.Fatalf("gen = %d, want 1", d.Generation())
	}
	fmt.Fprintf(d, "tail-line-1\n")
	fmt.Fprintf(d, "tail-line-2\n")
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}

	ckpt, tail, err := d.ReadSegments()
	if err != nil {
		t.Fatal(err)
	}
	if string(ckpt) != "ckpt-1\n" {
		t.Errorf("ckpt = %q", ckpt)
	}
	if string(tail) != "tail-line-1\ntail-line-2\n" {
		t.Errorf("tail = %q", tail)
	}

	// Rotate: boundary bytes buffered before BeginRotate land in the old
	// tail; bytes after it land in the new one.
	fmt.Fprintf(d, "old-epoch\n")
	d.BeginRotate()
	fmt.Fprintf(d, "new-epoch\n")
	st, err := d.CompleteRotate(func(w io.Writer) error {
		_, err := w.Write([]byte("ckpt-2\n"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.TruncatedBytes == 0 {
		t.Error("rotation reclaimed no bytes")
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	ckpt, tail, err = d.ReadSegments()
	if err != nil {
		t.Fatal(err)
	}
	if string(ckpt) != "ckpt-2\n" {
		t.Errorf("ckpt after rotate = %q", ckpt)
	}
	if string(tail) != "new-epoch\n" {
		t.Errorf("tail after rotate = %q (old-epoch bytes must be truncated away)", tail)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Old generation files must be gone.
	entries, _ := os.ReadDir(dir)
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("dir holds %v, want exactly ckpt-2 + tail-2", names)
	}

	// Reopen: generation and contents survive.
	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Generation() != 2 {
		t.Fatalf("reopened gen = %d, want 2", d2.Generation())
	}
	ckpt, tail, err = d2.ReadSegments()
	if err != nil {
		t.Fatal(err)
	}
	if string(ckpt) != "ckpt-2\n" || string(tail) != "new-epoch\n" {
		t.Errorf("reopened segments = %q / %q", ckpt, tail)
	}
}

func TestDiskSweepsStaleGenerations(t *testing.T) {
	dir := t.TempDir()
	// Simulate a crash between rotation and cleanup: both generations on
	// disk, plus a torn temp file.
	writeFile(t, filepath.Join(dir, "ckpt-00000001.wal"), "old-ckpt\n")
	writeFile(t, filepath.Join(dir, "tail-00000001.wal"), "old-tail\n")
	writeFile(t, filepath.Join(dir, "ckpt-00000002.wal"), "new-ckpt\n")
	writeFile(t, filepath.Join(dir, "ckpt-00000003.wal.tmp"), "torn")

	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Generation() != 2 {
		t.Fatalf("gen = %d, want newest complete generation 2", d.Generation())
	}
	ckpt, tail, err := d.ReadSegments()
	if err != nil {
		t.Fatal(err)
	}
	if string(ckpt) != "new-ckpt\n" {
		t.Errorf("ckpt = %q", ckpt)
	}
	if len(tail) != 0 {
		t.Errorf("missing tail should read empty, got %q", tail)
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt-00000001.wal")); !os.IsNotExist(err) {
		t.Error("stale generation 1 checkpoint not swept")
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt-00000003.wal.tmp")); !os.IsNotExist(err) {
		t.Error("temp file not swept")
	}
}

func TestDiskTruncateTail(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CompleteRotate(func(w io.Writer) error { return nil }); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(d, "good line\ntorn li")
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.TruncateTail(int64(len("good line\n"))); err != nil {
		t.Fatal(err)
	}
	_, tail, err := d.ReadSegments()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tail, []byte("good line\n")) {
		t.Fatalf("tail after truncate = %q", tail)
	}
	d.Close()
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
