package model

import (
	"testing"
	"testing/quick"
)

func TestStateBasics(t *testing.T) {
	s := NewState()
	if got := s.Get("x"); got != 0 {
		t.Errorf("zero value = %d, want 0", got)
	}
	s.Set("x", 7)
	if got := s.Get("x"); got != 7 {
		t.Errorf("Get after Set = %d, want 7", got)
	}
}

func TestStateCloneIndependence(t *testing.T) {
	s := StateOf(map[Item]Value{"x": 1, "y": 2})
	c := s.Clone()
	c.Set("x", 99)
	if s.Get("x") != 1 {
		t.Error("Clone shares storage with the original")
	}
}

func TestStateOfCopies(t *testing.T) {
	m := map[Item]Value{"x": 1}
	s := StateOf(m)
	m["x"] = 5
	if s.Get("x") != 1 {
		t.Error("StateOf kept a reference to the caller's map")
	}
}

func TestStateEqualTreatsZeroAsAbsent(t *testing.T) {
	a := StateOf(map[Item]Value{"x": 1, "y": 0})
	b := StateOf(map[Item]Value{"x": 1})
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("states differing only in explicit zeros should be equal")
	}
	b.Set("x", 2)
	if a.Equal(b) {
		t.Error("different values reported equal")
	}
}

func TestStateDiffApplyRoundTrip(t *testing.T) {
	f := func(ax, ay, bx, bz int8) bool {
		a := StateOf(map[Item]Value{"x": Value(ax), "y": Value(ay)})
		b := StateOf(map[Item]Value{"x": Value(bx), "z": Value(bz)})
		d := a.Diff(b)
		return a.Clone().Apply(d).Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("Apply(Diff) round-trip: %v", err)
	}
}

func TestStateString(t *testing.T) {
	s := StateOf(map[Item]Value{"y": 12, "x": 1, "z": 2})
	if got, want := s.String(), "{x=1; y=12; z=2}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestItemSetOps(t *testing.T) {
	a := NewItemSet("x", "y")
	b := NewItemSet("y", "z")
	if got := a.Union(b); len(got) != 3 {
		t.Errorf("Union = %v, want 3 items", got)
	}
	if got := a.Intersect(b); len(got) != 1 || !got.Has("y") {
		t.Errorf("Intersect = %v, want {y}", got)
	}
	if got := a.Minus(b); len(got) != 1 || !got.Has("x") {
		t.Errorf("Minus = %v, want {x}", got)
	}
	if a.Disjoint(b) {
		t.Error("Disjoint(a,b) = true, want false")
	}
	if !a.Disjoint(NewItemSet("w")) {
		t.Error("Disjoint with unrelated set = false, want true")
	}
}

func TestItemSetCloneIndependence(t *testing.T) {
	a := NewItemSet("x")
	c := a.Clone()
	c.Add("y")
	if a.Has("y") {
		t.Error("Clone shares storage")
	}
}

func TestItemSetDeterministicString(t *testing.T) {
	s := NewItemSet("d2", "d10", "d1")
	if got, want := s.String(), "{d1, d10, d2}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// TestSetAlgebraProperties property-checks basic set identities used
// throughout the rewriting code.
func TestSetAlgebraProperties(t *testing.T) {
	mk := func(bits uint8) ItemSet {
		s := make(ItemSet)
		names := []Item{"a", "b", "c", "d"}
		for i, n := range names {
			if bits&(1<<i) != 0 {
				s.Add(n)
			}
		}
		return s
	}
	f := func(x, y uint8) bool {
		a, b := mk(x), mk(y)
		// |A| = |A∩B| + |A−B|
		if len(a) != len(a.Intersect(b))+len(a.Minus(b)) {
			return false
		}
		// A∩B disjoint from A−B
		if !a.Intersect(b).Disjoint(a.Minus(b)) {
			return false
		}
		// Union is commutative in membership.
		u1, u2 := a.Union(b), b.Union(a)
		if len(u1) != len(u2) {
			return false
		}
		for k := range u1 {
			if !u2.Has(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("set algebra: %v", err)
	}
}
