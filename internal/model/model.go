// Package model defines the primitive database vocabulary shared by every
// subsystem: data items, values, database states and item sets.
//
// The paper's database is a flat collection of named data items (d1, d2, ...)
// holding scalar values. States are the "augmented history" states of
// Section 3: the before/after snapshots interleaved with transactions.
package model

import (
	"fmt"
	"sort"
	"strings"
)

// Item names a replicated data item (the paper's d1, d2, ..., x, y, z).
type Item string

// Value is the scalar content of a data item. The paper's examples are all
// integer arithmetic; int64 keeps commutativity and inversion exact (no
// floating-point drift).
type Value int64

// State is a full database state: a total assignment of values to items.
// Items absent from the map are implicitly zero, mirroring a freshly
// initialized replica.
type State map[Item]Value

// NewState returns an empty state.
func NewState() State { return make(State) }

// StateOf builds a state from a literal map, copying it so the caller's map
// stays independent.
func StateOf(m map[Item]Value) State {
	s := make(State, len(m))
	for k, v := range m {
		s[k] = v
	}
	return s
}

// Get returns the value of item (zero when unset).
func (s State) Get(it Item) Value { return s[it] }

// Set assigns the value of item.
func (s State) Set(it Item, v Value) { s[it] = v }

// Clone returns a deep copy of the state.
func (s State) Clone() State {
	c := make(State, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Equal reports whether two states assign the same value to every item.
// Missing entries compare equal to explicit zeros, so states that differ
// only in which zero-valued items they materialize are considered equal.
func (s State) Equal(o State) bool {
	for k, v := range s {
		if o[k] != v {
			return false
		}
	}
	for k, v := range o {
		if s[k] != v {
			return false
		}
	}
	return true
}

// Diff returns the items whose values differ between s and o, with o's
// values. It answers "what would I have to write into s to obtain o".
func (s State) Diff(o State) map[Item]Value {
	d := make(map[Item]Value)
	for k, v := range o {
		if s[k] != v {
			d[k] = v
		}
	}
	for k := range s {
		if _, ok := o[k]; !ok && s[k] != 0 {
			d[k] = 0
		}
	}
	return d
}

// Apply writes every entry of updates into the state and returns s for
// chaining.
func (s State) Apply(updates map[Item]Value) State {
	for k, v := range updates {
		s[k] = v
	}
	return s
}

// Items returns the sorted item names present in the state.
func (s State) Items() []Item {
	its := make([]Item, 0, len(s))
	for k := range s {
		its = append(its, k)
	}
	sort.Slice(its, func(i, j int) bool { return its[i] < its[j] })
	return its
}

// String renders the state deterministically, e.g. {x=1; y=7}.
func (s State) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, it := range s.Items() {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s=%d", it, s[it])
	}
	b.WriteByte('}')
	return b.String()
}

// ItemSet is a set of item names, used for read sets and write sets.
type ItemSet map[Item]struct{}

// NewItemSet builds a set from the given items.
func NewItemSet(items ...Item) ItemSet {
	s := make(ItemSet, len(items))
	for _, it := range items {
		s[it] = struct{}{}
	}
	return s
}

// Add inserts an item.
func (s ItemSet) Add(it Item) { s[it] = struct{}{} }

// Has reports membership.
func (s ItemSet) Has(it Item) bool {
	_, ok := s[it]
	return ok
}

// Union returns a new set containing the members of both sets.
func (s ItemSet) Union(o ItemSet) ItemSet {
	u := make(ItemSet, len(s)+len(o))
	for k := range s {
		u[k] = struct{}{}
	}
	for k := range o {
		u[k] = struct{}{}
	}
	return u
}

// Intersect returns a new set with the members common to both sets.
func (s ItemSet) Intersect(o ItemSet) ItemSet {
	small, big := s, o
	if len(big) < len(small) {
		small, big = big, small
	}
	r := make(ItemSet)
	for k := range small {
		if big.Has(k) {
			r[k] = struct{}{}
		}
	}
	return r
}

// Minus returns a new set with o's members removed from s.
func (s ItemSet) Minus(o ItemSet) ItemSet {
	r := make(ItemSet)
	for k := range s {
		if !o.Has(k) {
			r[k] = struct{}{}
		}
	}
	return r
}

// Disjoint reports whether the sets share no member.
func (s ItemSet) Disjoint(o ItemSet) bool {
	small, big := s, o
	if len(big) < len(small) {
		small, big = big, small
	}
	for k := range small {
		if big.Has(k) {
			return false
		}
	}
	return true
}

// Clone returns a copy of the set.
func (s ItemSet) Clone() ItemSet {
	c := make(ItemSet, len(s))
	for k := range s {
		c[k] = struct{}{}
	}
	return c
}

// Items returns the sorted members.
func (s ItemSet) Items() []Item {
	its := make([]Item, 0, len(s))
	for k := range s {
		its = append(its, k)
	}
	sort.Slice(its, func(i, j int) bool { return its[i] < its[j] })
	return its
}

// String renders the set deterministically, e.g. {d1, d2}.
func (s ItemSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, it := range s.Items() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(string(it))
	}
	b.WriteByte('}')
	return b.String()
}
