module tiermerge

go 1.22
