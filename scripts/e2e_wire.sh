#!/usr/bin/env bash
# Multi-process wire smoke: build the tiermerge binary, start a real
# `tiermerge serve` child process on loopback TCP with fault injection
# armed, drive a client fleet against it under both protocols with the
# convergence check on (final master sum == initial sum + deposits), poke
# the debug HTTP sidecar, then SIGTERM the server and assert it drained
# gracefully. This is the docs/WIRE.md deployment story, end to end.
#
# Usage: scripts/e2e_wire.sh   (no arguments; ~2s on loopback)
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d "${TMPDIR:-/tmp}/wire-smoke.XXXXXX")
BIN="$WORK/tiermerge"
OUT="$WORK/serve.out"
SERVER=""
cleanup() {
    [ -n "$SERVER" ] && kill "$SERVER" 2> /dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/tiermerge

"$BIN" serve -addr 127.0.0.1:0 -http 127.0.0.1:0 -drop 7 > "$OUT" 2>&1 &
SERVER=$!

# The server prints its bound addresses once the listeners are up.
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on //p' "$OUT")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "FAILED: server never came up" >&2
    cat "$OUT" >&2
    exit 1
fi
HTTP=$(sed -n 's/^debug http on //p' "$OUT")

echo "-- merge fleet over $ADDR (every 7th response dropped)"
"$BIN" client -addr "$ADDR" -mobiles 6 -rounds 3 -txns 4 -check

echo "-- reprocess fleet over $ADDR"
"$BIN" client -addr "$ADDR" -mobiles 3 -rounds 2 -txns 3 -protocol reprocess -check

if command -v curl > /dev/null 2>&1; then
    echo "-- debug sidecar on $HTTP"
    curl -fsS "http://$HTTP/debug/tiermerge" > "$WORK/debug.json"
    grep -q '"window_id"' "$WORK/debug.json"
    curl -fsS "http://$HTTP/debug/tiermerge/prometheus" > "$WORK/debug.prom"
    grep -q '^tiermerge_wire_bytes_in_total ' "$WORK/debug.prom"
else
    echo "-- debug sidecar check skipped (no curl)"
fi

kill -TERM "$SERVER"
wait "$SERVER"
SERVER=""
if ! grep -q '^served ' "$OUT"; then
    echo "FAILED: server did not drain cleanly" >&2
    cat "$OUT" >&2
    exit 1
fi
sed 's/^/   /' "$OUT"
echo "WIRE SMOKE PASSED"
