#!/usr/bin/env bash
# Persist per-PR bench results: run the experiment benchmarks (E13
# concurrent merges, E15 retry amortization, E16 sharded fleet, E17 wire
# transport, E18 delta merging, E19 durable store) and write
# BENCH_E13.json / BENCH_E15.json / BENCH_E16.json / BENCH_E17.json /
# BENCH_E18.json / BENCH_E19.json at the repo root via benchreport's
# -benchjson mode. BENCH_E16.json carries the headline speedup summary
# (disjoint-fleet merges/s per shard count over the 1-shard baseline; the
# acceptance bar is speedup_shards_4 >= 3). BENCH_E17.json carries the
# TCP transport's measured on-wire bytes, framing overhead and slowdown
# vs in-process. BENCH_E18.json carries the delta-vs-value comparison
# (back-outs avoided, graph-op reduction, increments folded, speedup).
# BENCH_E19.json carries the durability trade: disk-vs-memory commit
# slowdown and the checkpoint+tail recovery speedup / log-size reduction
# over full-history replay.
#
# Usage: scripts/bench.sh [benchtime]   (default 3x; use e.g. 1s for
# steadier numbers on a quiet machine)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-3x}"

go test -run '^$' \
    -bench 'BenchmarkE13ConcurrentMerge|BenchmarkE15IncrementalRetry|BenchmarkE16ShardedFleet|BenchmarkE17WireTransport|BenchmarkE18DeltaMerge|BenchmarkE19DurableStore' \
    -benchtime "$BENCHTIME" -benchmem . \
    | go run ./cmd/benchreport -benchjson -out .
