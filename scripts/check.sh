#!/usr/bin/env bash
# Full repository verification: build, vet, format check, unit/property
# tests, experiment regeneration with pass/fail gates, examples and a quick
# benchmark smoke. CI would run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l . | grep -v '^$' || true)
if [ -n "$unformatted" ]; then
    echo "unformatted files:" "$unformatted"
    exit 1
fi

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== tests =="
go test ./...

echo "== race (concurrent merge pipeline + sharded detector cache) =="
go test -race ./internal/replica/... ./internal/rewrite/...

echo "== experiments (E0..E13) =="
go run ./cmd/benchreport > /dev/null

echo "== examples =="
for ex in quickstart banking inventory fleet offline intrusion; do
    echo "-- examples/$ex"
    go run "./examples/$ex" > /dev/null
done

echo "== scenario files =="
for f in scenarios/*.txn; do
    echo "-- $f"
    go run ./cmd/txrun -file "$f" > /dev/null
done

echo "== benchmark smoke =="
go test -run XXX -bench . -benchtime 1x ./... > /dev/null

echo "ALL CHECKS PASSED"
