#!/usr/bin/env bash
# Full repository verification: build, vet, tiermergelint (the merge
# protocol's invariant gate), format check, unit/property tests,
# experiment regeneration with pass/fail gates, examples and a quick
# benchmark smoke. CI runs exactly this (see .github/workflows/ci.yml).
set -euo pipefail
cd "$(dirname "$0")/.."

# Pinned versions for the external gates (staticcheck, govulncheck).
# These are REQUIRED: a missing binary fails the check unless the run
# opts out explicitly with TIERMERGE_SKIP_EXTERNAL_GATES=1 (offline or
# vendoring-free environments — CI's lint job runs the pinned tools
# itself, so its check job sets the variable).
STATICCHECK_VERSION="${STATICCHECK_VERSION:-2024.1}"
GOVULNCHECK_VERSION="${GOVULNCHECK_VERSION:-v1.1.3}"
TIERMERGE_SKIP_EXTERNAL_GATES="${TIERMERGE_SKIP_EXTERNAL_GATES:-0}"

# run_logged NAME CMD...: run a command with output captured to a log,
# replaying the log when the command fails so panics in benchreport or
# the examples are never swallowed by a silent redirect.
run_logged() {
    local name="$1"
    shift
    local log
    log=$(mktemp "${TMPDIR:-/tmp}/check-${name//\//_}.XXXXXX")
    if ! "$@" > "$log" 2>&1; then
        echo "FAILED: $name ($*)" >&2
        echo "---- output ----" >&2
        cat "$log" >&2
        rm -f "$log"
        exit 1
    fi
    rm -f "$log"
}

echo "== gofmt =="
unformatted=$(gofmt -l . | grep -v '^$' || true)
if [ -n "$unformatted" ]; then
    echo "unformatted files:" "$unformatted"
    exit 1
fi

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== tiermergelint (merge-protocol invariants) =="
go run ./cmd/tiermergelint ./...

echo "== staticcheck (required, pinned $STATICCHECK_VERSION) =="
if command -v staticcheck > /dev/null 2>&1; then
    have=$(staticcheck -version 2> /dev/null || true)
    case "$have" in
        *"$STATICCHECK_VERSION"*) staticcheck ./... ;;
        *)
            echo "WARNING: staticcheck version mismatch (have: ${have:-unknown}, want $STATICCHECK_VERSION); running anyway"
            staticcheck ./...
            ;;
    esac
elif [ "$TIERMERGE_SKIP_EXTERNAL_GATES" = "1" ]; then
    echo "SKIPPED: staticcheck (TIERMERGE_SKIP_EXTERNAL_GATES=1; pin: $STATICCHECK_VERSION)"
else
    echo "FAILED: staticcheck not installed (pin: $STATICCHECK_VERSION)." >&2
    echo "Install it, or set TIERMERGE_SKIP_EXTERNAL_GATES=1 to skip the external gates." >&2
    exit 1
fi

echo "== govulncheck (required, pinned $GOVULNCHECK_VERSION) =="
if command -v govulncheck > /dev/null 2>&1; then
    govulncheck ./... || {
        echo "FAILED: govulncheck" >&2
        exit 1
    }
elif [ "$TIERMERGE_SKIP_EXTERNAL_GATES" = "1" ]; then
    echo "SKIPPED: govulncheck (TIERMERGE_SKIP_EXTERNAL_GATES=1; pin: $GOVULNCHECK_VERSION)"
else
    echo "FAILED: govulncheck not installed (pin: $GOVULNCHECK_VERSION)." >&2
    echo "Install it, or set TIERMERGE_SKIP_EXTERNAL_GATES=1 to skip the external gates." >&2
    exit 1
fi

echo "== tests =="
go test ./...

echo "== race (concurrent merge pipeline + observers + crash-recovery soak) =="
go test -race ./internal/replica/... ./internal/rewrite/... ./internal/obs/... ./internal/sim/...

echo "== race (wire transport: chan-vs-TCP conformance, exactly-once, drains) =="
# Explicit gate for the transport seam: the conformance suite must produce
# identical outcomes over the in-process channel transport and real
# loopback TCP — round trips, drop-retry parity, exactly-once under
# duplicated frames, mid-flight server close, and oversized-frame
# rejection — all under the race detector.
go test -race -count=1 ./internal/wire/

echo "== race (incremental re-prepare parity + batched admission) =="
# Explicit gate for the retry-amortization invariants: incremental
# re-prepare must match a from-scratch prepare (reports and counters),
# uploads bill once per reconnect, and a disjoint fleet batches its
# admission — all under the race detector.
go test -race -count=1 -run 'IncrementalRetryMatchesFromScratch|RetryBillsUploadOnce|BatchedAdmission|SerialAdmissionDiagnosticSwitch' ./internal/replica/

echo "== race (sharded base tier: two-phase cross-shard merges + window barrier) =="
# Explicit gate for the sharding invariants: N=1 parity with the plain
# cluster, serial-order equivalence of concurrent sharded reconnects,
# admission-mode counter parity, cross-shard merges vs the single-shard
# baseline, the checkout/advance window barrier, and the
# all-shards-contended deadlock smoke — all under the race detector.
go test -race -count=1 -run 'TestShard|TestCrossShard|TestWindowBarrier' ./internal/replica/

echo "== experiments (E0..E19) =="
run_logged benchreport go run ./cmd/benchreport

echo "== examples =="
for ex in quickstart banking inventory fleet offline intrusion; do
    echo "-- examples/$ex"
    run_logged "example-$ex" go run "./examples/$ex"
done

echo "== scenario files =="
for f in scenarios/*.txn; do
    echo "-- $f"
    run_logged "scenario-$(basename "$f")" go run ./cmd/txrun -file "$f"
done

echo "== merge trace smoke =="
run_logged trace-smoke go run ./cmd/tiermerge trace -mobiles 2 -rounds 2 -txns 3

echo "== multi-process wire smoke (tiermerge serve + client over loopback TCP) =="
run_logged wire-smoke bash scripts/e2e_wire.sh

echo "== benchmark smoke =="
run_logged bench-smoke go test -run XXX -bench . -benchtime 1x ./...

echo "ALL CHECKS PASSED"
