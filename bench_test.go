// Benchmarks for the reproduction suite: one bench per experiment kernel
// (E0..E9, E13..E15; E10-E12 are timed by the ablation benches, see DESIGN.md) plus
// micro-benchmarks for the algorithmic pieces whose asymptotic costs
// Section 7.1 discusses (graph construction, the O(n^2) rewriting pass,
// pruning, and the lock manager).
//
// Run with:
//
//	go test -bench=. -benchmem ./...
package tiermerge_test

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"

	"tiermerge"
	"tiermerge/internal/eager"
	"tiermerge/internal/graph"
	"tiermerge/internal/history"
	"tiermerge/internal/merge"
	"tiermerge/internal/model"
	"tiermerge/internal/papertest"
	"tiermerge/internal/prune"
	"tiermerge/internal/replica"
	"tiermerge/internal/rewrite"
	"tiermerge/internal/sim"
	"tiermerge/internal/store"
	"tiermerge/internal/tx"
	"tiermerge/internal/workload"
)

// benchHistories builds a deterministic conflicting history pair of the
// given lengths.
func benchHistories(b *testing.B, items, nm, nb int) (hm, hb *history.Augmented) {
	b.Helper()
	gen := workload.NewGenerator(workload.Config{Seed: 1234, Items: items, PCommutative: 0.7})
	origin := gen.OriginState()
	hm, err := gen.RunHistory(tx.Tentative, nm, origin)
	if err != nil {
		b.Fatal(err)
	}
	hb, err = gen.RunHistory(tx.Base, nb, origin)
	if err != nil {
		b.Fatal(err)
	}
	return hm, hb
}

// benchBadSet derives a bad set from the precedence graph so rewriting
// benches exercise realistic back-outs.
func benchBadSet(b *testing.B, hm, hb *history.Augmented) map[int]bool {
	b.Helper()
	g := graph.BuildFromHistories(hm, hb)
	bad, err := (graph.TwoCycle{}).ComputeB(g)
	if err != nil {
		b.Fatal(err)
	}
	set := make(map[int]bool, len(bad))
	for _, v := range bad {
		set[v] = true
	}
	return set
}

// BenchmarkE1PrecedenceGraph times building Figure 1's graph and computing
// its back-out set.
func BenchmarkE1PrecedenceGraph(b *testing.B) {
	e := papertest.NewExample1()
	am, err := history.Run(history.New(e.Mobile()...), e.Origin)
	if err != nil {
		b.Fatal(err)
	}
	ab, err := history.Run(history.New(e.BaseTxns()...), e.Origin)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.BuildFromHistories(am, ab)
		if _, err := (graph.TwoCycle{}).ComputeB(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2FixExecution times transaction execution with and without a
// fix (the Definition 1 read-override path).
func BenchmarkE2FixExecution(b *testing.B) {
	h := papertest.NewH4()
	for _, tc := range []struct {
		name string
		fix  tx.Fix
	}{
		{"empty-fix", nil},
		{"with-fix", tx.Fix{"u": 30}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := h.B1.Exec(h.Origin, tc.fix); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3Rewrite times the three rewriters on H4.
func BenchmarkE3Rewrite(b *testing.B) {
	h := papertest.NewH4()
	a, err := history.Run(history.New(h.Txns()...), h.Origin)
	if err != nil {
		b.Fatal(err)
	}
	bad := map[int]bool{0: true}
	b.Run("algorithm1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := rewrite.Algorithm1(a, bad); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("algorithm2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := rewrite.Algorithm2(a, bad, rewrite.StaticDetector{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cbtr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := rewrite.CBTR(a, bad, rewrite.StaticDetector{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE5CanFollow times Algorithm 1 across history lengths,
// demonstrating the O(n^2) rewriting bound of Section 7.1.
func BenchmarkE5CanFollow(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			hm, hb := benchHistories(b, 64, n, 8)
			bad := benchBadSet(b, hm, hb)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rewrite.Algorithm1(hm, bad); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6SavedSeries times Algorithm 2 (the saved-series kernel) across
// commutativity mixes.
func BenchmarkE6SavedSeries(b *testing.B) {
	for _, pc := range []float64{0.3, 0.9} {
		b.Run(fmt.Sprintf("pcommut=%.1f", pc), func(b *testing.B) {
			gen := workload.NewGenerator(workload.Config{Seed: 77, Items: 12, PCommutative: pc})
			origin := gen.OriginState()
			hm, err := gen.RunHistory(tx.Tentative, 16, origin)
			if err != nil {
				b.Fatal(err)
			}
			bad := gen.RandomBadSet(16, 0.2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rewrite.Algorithm2(hm, bad, rewrite.StaticDetector{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7Windows times whole scenarios across resynchronization window
// lengths (the Section 2.2 trade-off).
func BenchmarkE7Windows(b *testing.B) {
	for _, win := range []int{1, 4, 0} {
		name := fmt.Sprintf("windowEvery=%d", win)
		if win == 0 {
			name = "windowEvery=never"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(sim.Scenario{
					Seed: 7, Mobiles: 4, Rounds: 6, TxnsPerRound: 4, Items: 32,
					WindowEveryRounds: win,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8ProtocolComparison times whole scenarios under both protocols;
// the per-op time difference mirrors the Section 7.1 cost comparison on the
// real substrate (not just the abstract weights).
func BenchmarkE8ProtocolComparison(b *testing.B) {
	for _, tc := range []struct {
		name  string
		proto sim.Protocol
	}{
		{"merging", sim.Merging},
		{"reprocessing", sim.Reprocessing},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(sim.Scenario{
					Seed: 42, Mobiles: 8, Rounds: 3, TxnsPerRound: 6,
					Items: 256, Protocol: tc.proto,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9BackoutStrategies times each back-out strategy on a shared
// conflicting graph.
func BenchmarkE9BackoutStrategies(b *testing.B) {
	hm, hb := benchHistories(b, 8, 12, 8)
	g := graph.BuildFromHistories(hm, hb)
	for _, s := range []graph.Strategy{
		graph.TwoCycle{}, graph.GreedyCost{}, graph.GreedyDegree{},
		graph.Exhaustive{MaxCandidates: 18}, graph.AllCyclic{},
	} {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.ComputeB(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGraphBuild scales precedence-graph construction.
func BenchmarkGraphBuild(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			hm, hb := benchHistories(b, 128, n, n/2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				graph.BuildFromHistories(hm, hb)
			}
		})
	}
}

// BenchmarkMergeEndToEnd times the full six-step merging protocol.
func BenchmarkMergeEndToEnd(b *testing.B) {
	for _, n := range []int{8, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			hm, hb := benchHistories(b, 64, n, n/2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := merge.Merge(hm, hb, merge.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPrune times both pruning approaches on a commutative history.
func BenchmarkPrune(b *testing.B) {
	gen := workload.NewGenerator(workload.Config{Seed: 5, Items: 16, PCommutative: 1.0})
	origin := gen.OriginState()
	hm, err := gen.RunHistory(tx.Tentative, 16, origin)
	if err != nil {
		b.Fatal(err)
	}
	bad := gen.RandomBadSet(16, 0.25)
	res, err := rewrite.Algorithm2(hm, bad, rewrite.StaticDetector{})
	if err != nil {
		b.Fatal(err)
	}
	final := hm.Final()
	b.Run("compensation", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := prune.ByCompensation(res, final); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("undo", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := prune.ByUndo(res, final); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reexecute-oracle", func(b *testing.B) {
		b.ReportAllocs()
		repaired := res.Repaired()
		for i := 0; i < b.N; i++ {
			if _, err := history.Run(repaired, origin); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDetectors compares the static and dynamic can-precede detectors
// on the H4 pair.
func BenchmarkDetectors(b *testing.B) {
	h := papertest.NewH4()
	fix := tx.Fix{"u": 30}
	b.Run("static", func(b *testing.B) {
		det := rewrite.StaticDetector{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !det.CanPrecede(h.G3, h.B1, fix) {
				b.Fatal("unexpected rejection")
			}
		}
	})
	b.Run("dynamic", func(b *testing.B) {
		gen := workload.NewGenerator(workload.Config{Seed: 3})
		det := &rewrite.DynamicDetector{Rng: gen.Rand(), Samples: 32}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !det.CanPrecede(h.G3, h.B1, fix) {
				b.Fatal("unexpected rejection")
			}
		}
	})
}

// BenchmarkPublicAPIQuickstart times the README quick-start path through
// the public facade.
func BenchmarkPublicAPIQuickstart(b *testing.B) {
	origin := tiermerge.StateOf(map[tiermerge.Item]tiermerge.Value{"acct": 100})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base := tiermerge.NewBaseCluster(origin, tiermerge.ClusterConfig{})
		m := tiermerge.NewMobileNode("m1", base)
		if err := m.Run(tiermerge.Deposit("T1", tiermerge.Tentative, "acct", 25)); err != nil {
			b.Fatal(err)
		}
		if _, err := m.ConnectMerge(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13ConcurrentMerge measures reconnect-merge throughput on a
// low-conflict workload (each mobile touches only its private items). The
// serial baseline (MergeAttempts < 0) admits every merge under the cluster
// lock end-to-end; the pipeline overlaps the heavy prepare phases across
// goroutines and serializes only the short admission section, so on
// multi-core hosts the 8-mobile concurrent case scales with GOMAXPROCS.
func BenchmarkE13ConcurrentMerge(b *testing.B) {
	const txns = 32
	for _, mobiles := range []int{1, 8} {
		origin := model.State{}
		for i := 0; i < mobiles; i++ {
			for k := 0; k < 4; k++ {
				origin.Set(model.Item(fmt.Sprintf("m%d.i%d", i, k)), 100)
			}
		}
		hms := make([]*history.Augmented, mobiles)
		for i := range hms {
			h := &history.History{}
			for k := 0; k < txns; k++ {
				it := model.Item(fmt.Sprintf("m%d.i%d", i, k%4))
				h.Append(workload.Deposit(fmt.Sprintf("T%d.%d", i, k), tx.Tentative, it, 1))
			}
			a, err := history.Run(h, origin)
			if err != nil {
				b.Fatal(err)
			}
			hms[i] = a
		}
		run := func(b *testing.B, attempts int, concurrent bool) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				cluster := replica.NewBaseCluster(origin, replica.Config{MergeAttempts: attempts})
				if concurrent {
					var wg sync.WaitGroup
					wg.Add(mobiles)
					for i := 0; i < mobiles; i++ {
						go func(i int) {
							defer wg.Done()
							ck := replica.Checkout{MobileID: fmt.Sprintf("m%d", i), WindowID: 1, Origin: origin}
							if _, err := cluster.Merge(ck, hms[i]); err != nil {
								b.Error(err)
							}
						}(i)
					}
					wg.Wait()
				} else {
					for i := 0; i < mobiles; i++ {
						ck := replica.Checkout{MobileID: fmt.Sprintf("m%d", i), WindowID: 1, Origin: origin}
						if _, err := cluster.Merge(ck, hms[i]); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
			b.ReportMetric(float64(b.N*mobiles)/b.Elapsed().Seconds(), "merges/s")
		}
		b.Run(fmt.Sprintf("serial/mobiles=%d", mobiles), func(b *testing.B) { run(b, -1, false) })
		b.Run(fmt.Sprintf("concurrent/mobiles=%d", mobiles), func(b *testing.B) { run(b, 0, true) })
	}
}

// BenchmarkE0EagerInstability times the motivation simulation at two fleet
// scales; the superlinear slowdown mirrors the deadlock blow-up.
func BenchmarkE0EagerInstability(b *testing.B) {
	for _, n := range []int{2, 8} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eager.Run(eager.Config{Seed: 7, Nodes: n})
			}
		})
	}
}

// BenchmarkE14CrashRecovery times the crash-recovery path: "recover"
// rebuilds a node by replaying its journal (scan + re-execute + integrity
// check, the WalRecordsReplayed × ReplayRecordCost column of E14), the
// protocol variants run whole crash-heavy scenarios (every period dies and
// recovers before reconciling) so the per-op gap prices recovery-plus-merge
// against recovery-plus-reprocess on the real substrate.
func BenchmarkE14CrashRecovery(b *testing.B) {
	for _, txns := range []int{8, 64} {
		b.Run(fmt.Sprintf("recover/txns=%d", txns), func(b *testing.B) {
			gen := workload.NewGenerator(workload.Config{Seed: 14, Items: 64, PCommutative: 0.7})
			cluster := replica.NewBaseCluster(gen.OriginState(), replica.Config{})
			m := replica.NewMobileNode("m1", cluster)
			var journal bytes.Buffer
			if err := m.AttachJournal(&journal); err != nil {
				b.Fatal(err)
			}
			for k := 0; k < txns; k++ {
				if err := m.Run(gen.Txn(tx.Tentative)); err != nil {
					b.Fatal(err)
				}
			}
			data := journal.Bytes()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := replica.RecoverMobileNode("m1", bytes.NewReader(data)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, tc := range []struct {
		name  string
		proto sim.Protocol
	}{
		{"merging", sim.Merging},
		{"reprocessing", sim.Reprocessing},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(sim.Scenario{
					Seed: 14, Mobiles: 4, Rounds: 3, TxnsPerRound: 16,
					Items: 256, PCommutative: 0.7, PCrash: 1.0, Protocol: tc.proto,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// e15BenchHistories mirrors the E15 experiment inputs: a 4-transaction
// mobile history on private items, and a base history whose prefix churns a
// fixed 32-item working set while its suffix deposits into fresh items,
// returned whole and split at the prefix boundary.
func e15BenchHistories(b *testing.B, prefix, suffix int) (hm, full, pre, suf *history.Augmented) {
	b.Helper()
	st := model.State{}
	st.Set("m0", 100)
	st.Set("m1", 100)
	for i := 0; i < 32; i++ {
		st.Set(model.Item(fmt.Sprintf("x%d", i)), 100)
	}
	for i := 0; i < suffix; i++ {
		st.Set(model.Item(fmt.Sprintf("y%d", i)), 100)
	}
	hb := &history.History{}
	for i := 0; i < prefix; i++ {
		hb.Append(workload.Deposit(fmt.Sprintf("B%d", i), tx.Base, model.Item(fmt.Sprintf("x%d", i%32)), 1))
	}
	for i := 0; i < suffix; i++ {
		hb.Append(workload.Deposit(fmt.Sprintf("S%d", i), tx.Base, model.Item(fmt.Sprintf("y%d", i)), 1))
	}
	full, err := history.Run(hb, st)
	if err != nil {
		b.Fatal(err)
	}
	hmH := &history.History{}
	for i, it := range []model.Item{"m0", "m1", "m0", "m1"} {
		hmH.Append(workload.Deposit(fmt.Sprintf("T%d", i), tx.Tentative, it, 5))
	}
	hm, err = history.Run(hmH, st)
	if err != nil {
		b.Fatal(err)
	}
	pre = &history.Augmented{
		H:       full.H.Prefix(prefix),
		States:  full.States[:prefix+1],
		Effects: full.Effects[:prefix],
	}
	suf = &history.Augmented{
		H:       &history.History{Entries: full.H.Entries[prefix:]},
		States:  full.States[prefix:],
		Effects: full.Effects[prefix:],
	}
	return hm, full, pre, suf
}

// BenchmarkE15IncrementalRetry times the two retry amortizations behind
// experiment E15. The rebuild/extend pair re-prepares a merge invalidated by
// an 8-entry base suffix: the rebuild arm pays a from-scratch G(Hm, Hb) over
// the whole extended history and grows with the prefix, while the extend arm
// pays only the suffix extension and stays flat (the prefix report it
// consumes is rebuilt off the clock, since Extend grows it in place). The
// admission pair reconnects 8 disjoint mobiles concurrently: serial
// admission pays one critical section per merge, batched admission gates the
// leader until the fleet has enqueued and admits all 8 in one.
func BenchmarkE15IncrementalRetry(b *testing.B) {
	const suffix = 8
	for _, prefix := range []int{64, 1024} {
		hm, fullAug, preAug, sufAug := e15BenchHistories(b, prefix, suffix)
		b.Run(fmt.Sprintf("rebuild/prefix=%d", prefix), func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				if _, err := merge.Merge(hm, fullAug, merge.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("extend/prefix=%d", prefix), func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				b.StopTimer()
				repPre, err := merge.Merge(hm, preAug, merge.Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, _, err := merge.Extend(repPre, hm, sufAug, merge.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	const mobiles = 8
	origin := model.State{}
	for i := 0; i < mobiles; i++ {
		origin.Set(model.Item(fmt.Sprintf("a%d", i)), 100)
	}
	hms := make([]*history.Augmented, mobiles)
	for i := range hms {
		h := &history.History{}
		for k := 0; k < 3; k++ {
			it := model.Item(fmt.Sprintf("a%d", i))
			h.Append(workload.Deposit(fmt.Sprintf("T%d.%d", i, k), tx.Tentative, it, 5))
		}
		a, err := history.Run(h, origin)
		if err != nil {
			b.Fatal(err)
		}
		hms[i] = a
	}
	runFleet := func(b *testing.B, serial bool) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			cluster := replica.NewBaseCluster(origin, replica.Config{SerialAdmission: serial})
			if !serial {
				cluster.SetAdmitGate(func(queued int) bool { return queued == mobiles })
			}
			var wg sync.WaitGroup
			wg.Add(mobiles)
			for i := 0; i < mobiles; i++ {
				go func(i int) {
					defer wg.Done()
					ck := replica.Checkout{MobileID: fmt.Sprintf("m%d", i), WindowID: 1, Origin: origin}
					if _, err := cluster.Merge(ck, hms[i]); err != nil {
						b.Error(err)
					}
				}(i)
			}
			wg.Wait()
		}
		b.ReportMetric(float64(b.N*mobiles)/b.Elapsed().Seconds(), "merges/s")
	}
	b.Run(fmt.Sprintf("serialAdmit/mobiles=%d", mobiles), func(b *testing.B) { runFleet(b, true) })
	b.Run(fmt.Sprintf("batchedAdmit/mobiles=%d", mobiles), func(b *testing.B) { runFleet(b, false) })
}

// BenchmarkE16ShardedFleet measures the sharded base tier: a 64-mobile
// fleet of disjoint deposit histories reconnects concurrently against 1,
// 2, 4 and 8 shards, all-disjoint and with ~10% of mobiles carrying one
// cross-shard transfer. The fleet checks out, the base commits 2048
// deposits while they are away, then every mobile merges at once — so
// each merge's prepare scans the base traffic committed since checkout,
// which partitioning divides by the shard count, along with the admission
// critical sections. The merges/s metric is the E16 headline recorded in
// BENCH_E16.json.
func BenchmarkE16ShardedFleet(b *testing.B) {
	const mobiles, txns, warmup = 64, 3, 2048
	origin := model.State{}
	for i := 0; i < mobiles; i++ {
		origin.Set(model.Item(fmt.Sprintf("m%d.acct", i)), 100)
	}
	item := func(i int) model.Item { return model.Item(fmt.Sprintf("m%d.acct", i)) }
	for _, shards := range []int{1, 2, 4, 8} {
		router := replica.NewShardedBase(origin, shards, replica.Config{}).Router()
		// crossPartner: the first other mobile whose account hashes to a
		// different shard (next mobile when there is only one shard).
		crossPartner := func(i int) int {
			for d := 1; d < mobiles; d++ {
				j := (i + d) % mobiles
				if router.Shard(item(j)) != router.Shard(item(i)) {
					return j
				}
			}
			return (i + 1) % mobiles
		}
		for _, crossPct := range []int{0, 10} {
			hms := make([]*history.Augmented, mobiles)
			for i := range hms {
				h := &history.History{}
				for k := 0; k < txns; k++ {
					h.Append(workload.Deposit(fmt.Sprintf("T%d.%d", i, k), tx.Tentative, item(i), 1))
				}
				if crossPct > 0 && i%(100/crossPct) == 0 {
					h.Append(workload.Transfer(fmt.Sprintf("X%d", i), tx.Tentative, item(i), item(crossPartner(i)), 1))
				}
				a, err := history.Run(h, origin)
				if err != nil {
					b.Fatal(err)
				}
				hms[i] = a
			}
			b.Run(fmt.Sprintf("shards=%d/cross=%d%%", shards, crossPct), func(b *testing.B) {
				b.ReportAllocs()
				for n := 0; n < b.N; n++ {
					b.StopTimer()
					s := replica.NewShardedBase(origin, shards, replica.Config{})
					cks := make([]replica.Checkout, mobiles)
					for i := range cks {
						cks[i] = s.CheckoutReplica(fmt.Sprintf("m%d", i))
					}
					for w := 0; w < warmup; w++ {
						if err := s.ExecBase(workload.Deposit(fmt.Sprintf("B%d", w), tx.Base, item(w%mobiles), 1)); err != nil {
							b.Fatal(err)
						}
					}
					b.StartTimer()
					var wg sync.WaitGroup
					wg.Add(mobiles)
					for i := 0; i < mobiles; i++ {
						go func(i int) {
							defer wg.Done()
							if _, err := s.Merge(cks[i], hms[i]); err != nil {
								b.Error(err)
							}
						}(i)
					}
					wg.Wait()
				}
				b.ReportMetric(float64(b.N*mobiles)/b.Elapsed().Seconds(), "merges/s")
			})
		}
	}
}

// BenchmarkE17WireTransport times the same fleet scenario over the
// in-process channel transport and over real loopback TCP, reporting the
// measured byte accounting alongside the time: payload bytes per run,
// on-wire frame bytes per run (TCP only) and the framing overhead they
// imply. BENCH_E17.json records these as the E17 headline — the cost of
// deploying the mobile fleet as separate processes.
func BenchmarkE17WireTransport(b *testing.B) {
	base := sim.Scenario{
		Seed: 321, Mobiles: 6, Rounds: 3, TxnsPerRound: 5, Items: 64, ServerWorkers: 4,
	}
	for _, mode := range []string{"chan", "tcp"} {
		sc := base
		if mode == "tcp" {
			sc.WireTCP = true
		} else {
			sc.MessagePassing = true
		}
		b.Run("transport="+mode, func(b *testing.B) {
			b.ReportAllocs()
			var reqs, payload, frames int64
			for n := 0; n < b.N; n++ {
				res, err := sim.Run(sc)
				if err != nil {
					b.Fatal(err)
				}
				reqs += res.WireRequests
				payload += res.WireBytes
				frames += res.WireFrameBytes
			}
			b.ReportMetric(float64(reqs)/float64(b.N), "requests/op")
			b.ReportMetric(float64(payload)/float64(b.N), "payload_B/op")
			if frames > 0 {
				b.ReportMetric(float64(frames)/float64(b.N), "wire_B/op")
				b.ReportMetric(100*float64(frames-payload)/float64(payload), "overhead_%")
			}
		})
	}
}

// BenchmarkE18DeltaMerge times the E18 counter fleet (all-commutative,
// hot-item contended) in both arms: increments merged as first-class
// deltas vs the DisableDeltas value-write baseline. Beyond wall clock,
// each arm reports its back-out, elision and folding tallies per run —
// benchreport's e18 summary turns the pair into the headline reduction.
func BenchmarkE18DeltaMerge(b *testing.B) {
	base := sim.Scenario{
		Seed: 18, Mobiles: 6, Rounds: 3, TxnsPerRound: 5,
		BaseTxnsPerRound: 2, Items: 24, HotItems: 4, PHot: 0.6,
		PCommutative: 1, WindowEveryRounds: 2,
	}
	for _, arm := range []string{"delta", "value"} {
		sc := base
		if arm == "value" {
			sc.MergeOptions = merge.Options{DisableDeltas: true}
		}
		b.Run("arm="+arm, func(b *testing.B) {
			b.ReportAllocs()
			var backouts, elided, folded, graphOps int64
			for n := 0; n < b.N; n++ {
				res, err := sim.Run(sc)
				if err != nil {
					b.Fatal(err)
				}
				backouts += res.Counts.TxnsBackedOut
				elided += res.Counts.EdgesElided
				folded += res.Counts.DeltaFolded
				graphOps += res.Counts.BaseGraphOps
			}
			b.ReportMetric(float64(backouts)/float64(b.N), "backouts/op")
			b.ReportMetric(float64(elided)/float64(b.N), "elided/op")
			b.ReportMetric(float64(folded)/float64(b.N), "folded/op")
			b.ReportMetric(float64(graphOps)/float64(b.N), "graph_ops/op")
		})
	}
}

// e19Day commits a deterministic base day — windows of transactions with
// window advances between them — on cluster, checkpointing every ckptEvery
// windows (0 = never).
func e19Day(b *testing.B, cluster *replica.BaseCluster, windows, perWindow, ckptEvery int) {
	b.Helper()
	gen := workload.NewGenerator(workload.Config{Seed: 19, Items: 32, PCommutative: 0.5})
	n := 0
	for w := 0; w < windows; w++ {
		if w > 0 {
			cluster.AdvanceWindow()
		}
		if ckptEvery > 0 && w > 0 && w%ckptEvery == 0 {
			if err := cluster.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
		for i := 0; i < perWindow; i++ {
			t := gen.Txn(tx.Base)
			t.ID = fmt.Sprintf("T%d", n)
			n++
			if err := cluster.ExecBase(t); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE19DurableStore times the durable engine's two axes (DESIGN.md
// §14). backend=mem|disk commit the identical day through the MVCC store
// with and without the segmented log underneath (the disk arm pays a
// sync-before-ack fsync per commit). recover=full|ckpt time a restart:
// replaying a full-history journal vs the checkpoint + tail a rotated
// segment log leaves behind, with the log bytes each must read reported
// alongside — benchreport's e19 summary turns the pairs into the headline
// recovery speedup and log-size reduction.
func BenchmarkE19DurableStore(b *testing.B) {
	const windows, perWindow = 8, 8
	gen := workload.NewGenerator(workload.Config{Seed: 19, Items: 32, PCommutative: 0.5})
	origin := gen.OriginState()
	cfg := tiermerge.ClusterConfig{Weights: tiermerge.DefaultCostWeights()}

	for _, backend := range []string{"mem", "disk"} {
		b.Run("backend="+backend, func(b *testing.B) {
			b.ReportAllocs()
			var logBytes int64
			for n := 0; n < b.N; n++ {
				if backend == "mem" {
					mcfg := cfg
					mcfg.Store = store.NewMemory()
					e19Day(b, replica.NewBaseCluster(origin, mcfg), windows, perWindow, 0)
					continue
				}
				dir, err := os.MkdirTemp("", "tiermerge-e19-bench-")
				if err != nil {
					b.Fatal(err)
				}
				c, _, err := replica.OpenBase(dir, origin, cfg)
				if err != nil {
					b.Fatal(err)
				}
				e19Day(b, c, windows, perWindow, 0)
				logBytes += c.LogSize()
				c.CloseStore()
				os.RemoveAll(dir)
			}
			b.ReportMetric(float64(windows*perWindow), "commits/op")
			if logBytes > 0 {
				b.ReportMetric(float64(logBytes)/float64(b.N), "log_B/op")
			}
		})
	}

	// Recovery images, built once: a full-history journal and the
	// checkpoint + tail segments the same day leaves after rotations.
	legacy := replica.NewBaseCluster(origin, cfg)
	var full bytes.Buffer
	if err := legacy.AttachJournal(&full); err != nil {
		b.Fatal(err)
	}
	e19Day(b, legacy, windows, perWindow, 0)
	ckptDir := b.TempDir()
	prep, _, err := replica.OpenBase(ckptDir, origin, cfg)
	if err != nil {
		b.Fatal(err)
	}
	e19Day(b, prep, windows, perWindow, 2)
	ckptBytes := prep.LogSize()
	if err := prep.CloseStore(); err != nil {
		b.Fatal(err)
	}

	for _, mode := range []string{"full", "ckpt"} {
		b.Run("recover="+mode, func(b *testing.B) {
			b.ReportAllocs()
			var replayed int64
			for n := 0; n < b.N; n++ {
				if mode == "full" {
					_, rec, err := replica.RecoverBaseCluster(bytes.NewReader(full.Bytes()), cfg)
					if err != nil {
						b.Fatal(err)
					}
					replayed += int64(rec.Records)
					continue
				}
				c, rec, err := replica.OpenBase(ckptDir, origin, cfg)
				if err != nil {
					b.Fatal(err)
				}
				replayed += int64(rec.Records)
				c.CloseStore()
			}
			b.ReportMetric(float64(replayed)/float64(b.N), "replayed/op")
			if mode == "full" {
				b.ReportMetric(float64(full.Len()), "log_B")
			} else {
				b.ReportMetric(float64(ckptBytes), "log_B")
			}
		})
	}
}
