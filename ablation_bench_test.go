// Ablation benchmarks for the design choices DESIGN.md calls out: detector
// modes (static vs cached vs dynamic), blind-write rewriting vs the closure
// baseline, journal replay, encoded-code shipping sizes, and lock-manager
// contention.
package tiermerge_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"tiermerge/internal/history"
	"tiermerge/internal/lockmgr"
	"tiermerge/internal/merge"
	"tiermerge/internal/model"
	"tiermerge/internal/papertest"
	"tiermerge/internal/recovery"
	"tiermerge/internal/replica"
	"tiermerge/internal/rewrite"
	"tiermerge/internal/tx"
	"tiermerge/internal/wal"
	"tiermerge/internal/workload"
)

// BenchmarkAblationDetectors runs Algorithm 2 over the same history with
// each detector mode; the cached detector's advantage grows with history
// length because canned type pairs repeat.
func BenchmarkAblationDetectors(b *testing.B) {
	gen := workload.NewGenerator(workload.Config{Seed: 71, Items: 10, PCommutative: 0.8})
	origin := gen.OriginState()
	hm, err := gen.RunHistory(tx.Tentative, 24, origin)
	if err != nil {
		b.Fatal(err)
	}
	bad := gen.RandomBadSet(24, 0.2)
	detectors := []struct {
		name string
		det  rewrite.PrecedeDetector
	}{
		{"static", rewrite.StaticDetector{}},
		{"cached", rewrite.NewCachedDetector(rewrite.StaticDetector{})},
		{"dynamic", &rewrite.DynamicDetector{Rng: gen.Rand(), Samples: 32}},
	}
	// Warm verdicts once so every mode rewrites identically before timing.
	for _, d := range detectors {
		if _, err := rewrite.Algorithm2(hm, bad, d.det); err != nil {
			b.Fatal(err)
		}
	}
	for _, d := range detectors {
		b.Run(d.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := rewrite.Algorithm2(hm, bad, d.det); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBlindWrites compares the closure back-out against
// blind-write can-follow rewriting on Example 1's history shape.
func BenchmarkAblationBlindWrites(b *testing.B) {
	e := papertest.NewExample1()
	am, err := history.Run(history.New(e.Mobile()...), e.Origin)
	if err != nil {
		b.Fatal(err)
	}
	ab, err := history.Run(history.New(e.BaseTxns()...), e.Origin)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		rw   merge.Rewriter
	}{
		{"closure", merge.RewriteClosure},
		{"canfollow-bw", merge.RewriteCanFollowBW},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := merge.Merge(am, ab, merge.Options{Rewriter: tc.rw}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALJournalAndReplay measures journaling overhead and crash
// recovery throughput.
func BenchmarkWALJournalAndReplay(b *testing.B) {
	gen := workload.NewGenerator(workload.Config{Seed: 81, Items: 12})
	origin := gen.OriginState()
	const n = 32
	txns := make([]*tx.Transaction, n)
	effs := make([]*tx.Effect, n)
	cur := origin.Clone()
	for i := range txns {
		txns[i] = gen.Txn(tx.Tentative)
		next, eff, err := txns[i].Exec(cur, nil)
		if err != nil {
			b.Fatal(err)
		}
		cur, effs[i] = next, eff
	}
	b.Run("journal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			w := wal.NewWriter(&buf)
			if err := w.Checkout(1, 0, origin); err != nil {
				b.Fatal(err)
			}
			for j := range txns {
				if err := w.LogTxn(txns[j], effs[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	var journal bytes.Buffer
	w := wal.NewWriter(&journal)
	if err := w.Checkout(1, 0, origin); err != nil {
		b.Fatal(err)
	}
	for j := range txns {
		if err := w.LogTxn(txns[j], effs[j]); err != nil {
			b.Fatal(err)
		}
	}
	raw := journal.Bytes()
	b.Run("replay", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			recs, err := wal.ReadAll(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := wal.Replay(recs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Logf("journal size for %d txns: %d bytes", n, len(raw))
}

// BenchmarkCodecSizes reports real encoded-code sizes for the canned types,
// grounding the cost model's CodeBytesPerStmt weight.
func BenchmarkCodecSizes(b *testing.B) {
	txns := []*tx.Transaction{
		workload.Deposit("T", tx.Tentative, "d1", 5),
		workload.Transfer("T", tx.Tentative, "d1", "d2", 5),
		workload.GuardedTransfer("T", tx.Tentative, "d1", "d2", 5),
		workload.Bonus("T", tx.Tentative, "d1", "d2", 100, 5),
	}
	for _, txn := range txns {
		txn := txn
		b.Run(txn.Type, func(b *testing.B) {
			b.ReportAllocs()
			var size int
			for i := 0; i < b.N; i++ {
				n, err := tx.EncodedSize(txn)
				if err != nil {
					b.Fatal(err)
				}
				size = n
			}
			b.ReportMetric(float64(size), "wire-bytes")
		})
	}
}

// BenchmarkLockManagerContention measures the base tier's 2PL throughput
// under increasing contention.
func BenchmarkLockManagerContention(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			m := lockmgr.New()
			items := []model.Item{"a", "b", "c", "d"}
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/workers + 1
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					owner := fmt.Sprintf("w%d", w)
					for i := 0; i < per; i++ {
						it := items[(w+i)%len(items)]
						if err := m.Acquire(owner, it, lockmgr.Exclusive); err != nil {
							b.Error(err)
							return
						}
						m.ReleaseAll(owner)
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// BenchmarkRecoveryExcise times standalone excision (the intrusion-recovery
// mode) against re-executing the survivors from scratch.
func BenchmarkRecoveryExcise(b *testing.B) {
	gen := workload.NewGenerator(workload.Config{Seed: 91, Items: 16, PCommutative: 0.8})
	origin := gen.OriginState()
	aug, err := gen.RunHistory(tx.Tentative, 24, origin)
	if err != nil {
		b.Fatal(err)
	}
	bad := []string{aug.H.Txn(3).ID, aug.H.Txn(11).ID}
	b.Run("excise", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := recovery.Excise(aug, bad, recovery.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reexecute-survivors", func(b *testing.B) {
		rep, err := recovery.Excise(aug, bad, recovery.Options{})
		if err != nil {
			b.Fatal(err)
		}
		saved := make(map[string]bool)
		for _, id := range rep.SavedIDs {
			saved[id] = true
		}
		kept := &history.History{}
		for i := 0; i < aug.H.Len(); i++ {
			if saved[aug.H.Txn(i).ID] {
				kept.Append(aug.H.Txn(i))
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := history.Run(kept, origin); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBaseJournal measures the commit-path overhead of base-tier
// durability logging.
func BenchmarkBaseJournal(b *testing.B) {
	for _, journaled := range []bool{false, true} {
		name := "off"
		if journaled {
			name = "on"
		}
		b.Run("journal="+name, func(b *testing.B) {
			origin := model.StateOf(map[model.Item]model.Value{"x": 0})
			cluster := replica.NewBaseCluster(origin, replica.Config{})
			if journaled {
				var sink bytes.Buffer
				if err := cluster.AttachJournal(&sink); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				txn := workload.Deposit(fmt.Sprintf("T%d", i), tx.Base, "x", 1)
				if err := cluster.ExecBase(txn); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
