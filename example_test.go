package tiermerge_test

import (
	"fmt"

	"tiermerge"
)

// Example reproduces the package quick start: a mobile node works
// disconnected and reconciles through the merging protocol.
func Example() {
	origin := tiermerge.StateOf(map[tiermerge.Item]tiermerge.Value{"acct": 100})
	base := tiermerge.NewBaseCluster(origin, tiermerge.ClusterConfig{})

	m := tiermerge.NewMobileNode("m1", base)
	if err := m.Run(tiermerge.Deposit("T1", tiermerge.Tentative, "acct", 25)); err != nil {
		panic(err)
	}
	out, err := m.ConnectMerge()
	if err != nil {
		panic(err)
	}
	fmt.Println(out.Saved, base.Master().Get("acct"))
	// Output: 1 125
}

// ExampleMerge drives the protocol stages directly on the paper's
// Section 3 example.
func ExampleMerge() {
	origin := tiermerge.StateOf(map[tiermerge.Item]tiermerge.Value{"x": 1, "y": 7, "z": 2})

	b1 := tiermerge.MustNewTransaction("B1", tiermerge.Tentative,
		tiermerge.If(tiermerge.GT(tiermerge.Var("x"), tiermerge.Const(0)),
			tiermerge.Update("y",
				tiermerge.Add(tiermerge.Var("y"), tiermerge.Add(tiermerge.Var("z"), tiermerge.Const(3)))),
		),
	)
	g2 := tiermerge.MustNewTransaction("G2", tiermerge.Tentative,
		tiermerge.Update("x", tiermerge.Sub(tiermerge.Var("x"), tiermerge.Const(1))),
	)
	// A base transaction that conflicts with B1 on y.
	tb := tiermerge.SetPrice("TB1", tiermerge.Base, "y", 0)

	hm, _ := tiermerge.RunHistory(tiermerge.NewHistory(b1, g2), origin)
	hb, _ := tiermerge.RunHistory(tiermerge.NewHistory(tb), origin)
	rep, err := tiermerge.Merge(hm, hb, tiermerge.MergeOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("B:", rep.BadIDs)
	fmt.Println("saved:", rep.SavedIDs)
	// Output:
	// B: [B1]
	// saved: [G2]
}

// ExampleAlgorithm2 shows the H4 rewrite: the affected G3 is saved by
// can-precede and the bad B1 carries fix {u}.
func ExampleAlgorithm2() {
	origin := tiermerge.StateOf(map[tiermerge.Item]tiermerge.Value{"u": 30})

	b1 := tiermerge.MustNewTransaction("B1", tiermerge.Tentative,
		tiermerge.If(tiermerge.GT(tiermerge.Var("u"), tiermerge.Const(10)),
			tiermerge.Update("x", tiermerge.Add(tiermerge.Var("x"), tiermerge.Const(100))),
			tiermerge.Update("y", tiermerge.Sub(tiermerge.Var("y"), tiermerge.Const(20))),
		),
	)
	g2 := tiermerge.MustNewTransaction("G2", tiermerge.Tentative,
		tiermerge.Update("u", tiermerge.Sub(tiermerge.Var("u"), tiermerge.Const(20))))
	g3 := tiermerge.MustNewTransaction("G3", tiermerge.Tentative,
		tiermerge.Update("x", tiermerge.Add(tiermerge.Var("x"), tiermerge.Const(10))),
		tiermerge.Update("z", tiermerge.Add(tiermerge.Var("z"), tiermerge.Const(30))))

	hm, _ := tiermerge.RunHistory(tiermerge.NewHistory(b1, g2, g3), origin)
	res, err := tiermerge.Algorithm2(hm, map[int]bool{0: true}, tiermerge.StaticDetector{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Rewritten)
	// Output: G2 G3 B1^{u=30}
}

// ExampleParseTransaction parses the paper's notation directly.
func ExampleParseTransaction() {
	txn, err := tiermerge.ParseTransaction("B1", tiermerge.Tentative,
		"if x > 0 { y := y + z + 3 }")
	if err != nil {
		panic(err)
	}
	s0 := tiermerge.StateOf(map[tiermerge.Item]tiermerge.Value{"x": 1, "y": 7, "z": 2})
	out, _, err := txn.Exec(s0, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(out.Get("y"))
	// Output: 12
}

// ExampleInvert synthesizes a compensating transaction.
func ExampleInvert() {
	dep := tiermerge.Deposit("T", tiermerge.Tentative, "acct", 40)
	inv, err := tiermerge.Invert(dep)
	if err != nil {
		panic(err)
	}
	s := tiermerge.StateOf(map[tiermerge.Item]tiermerge.Value{"acct": 100})
	s1, _, _ := dep.Exec(s, nil)
	s2, _, _ := inv.Exec(s1, nil)
	fmt.Println(s1.Get("acct"), s2.Get("acct"))
	// Output: 140 100
}

// ExampleExcise removes a bad transaction from a committed history.
func ExampleExcise() {
	origin := tiermerge.StateOf(map[tiermerge.Item]tiermerge.Value{"a": 100})
	// A fraudulent withdrawal, discovered after a legitimate deposit to
	// the same account committed on top of it. Both are additive, so the
	// deposit is saved even though it is affected.
	bad := tiermerge.Withdraw("BAD", tiermerge.Tentative, "a", 50)
	good := tiermerge.Deposit("GOOD", tiermerge.Tentative, "a", 10)
	aug, _ := tiermerge.RunHistory(tiermerge.NewHistory(bad, good), origin)

	rep, err := tiermerge.Excise(aug, []string{"BAD"}, tiermerge.RecoveryOptions{Verify: true})
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.SavedIDs, rep.RepairedState.Get("a"))
	// Output: [GOOD] 110
}

// ExampleParseScenarioFile runs a whole merge scenario written in the
// paper's notation.
func ExampleParseScenarioFile() {
	sc, err := tiermerge.ParseScenarioFile(`
origin { x = 1; y = 7; z = 2 }
mobile tx B1 { if x > 0 { y := y + z + 3 } }
mobile tx G2 { x := x - 1 }
base tx TB1 { y := y * 2 }
`)
	if err != nil {
		panic(err)
	}
	hm, _ := tiermerge.RunHistory(tiermerge.NewHistory(sc.Mobile...), sc.Origin)
	hb, _ := tiermerge.RunHistory(tiermerge.NewHistory(sc.Base...), sc.Origin)
	rep, err := tiermerge.Merge(hm, hb, tiermerge.MergeOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("B:", rep.BadIDs, "saved:", rep.SavedIDs)
	// Output: B: [B1] saved: [G2]
}

// ExampleServeBase reconciles a mobile client over the message channel.
func ExampleServeBase() {
	origin := tiermerge.StateOf(map[tiermerge.Item]tiermerge.Value{"acct": 100})
	base := tiermerge.NewBaseCluster(origin, tiermerge.ClusterConfig{})
	srv := tiermerge.ServeBase(base)
	defer srv.Close()

	c, err := tiermerge.DialBase("m1", srv)
	if err != nil {
		panic(err)
	}
	if err := c.Run(tiermerge.Deposit("T1", tiermerge.Tentative, "acct", 25)); err != nil {
		panic(err)
	}
	out, err := c.ConnectMerge()
	if err != nil {
		panic(err)
	}
	fmt.Println(out.Saved, base.Master().Get("acct"))
	// Output: 1 125
}
